#include "src/net/ingest_server.h"

#include <arpa/inet.h>
#include <errno.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <string.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <string>

#include "src/common/codec.h"

namespace loom {

namespace {

constexpr size_t kMaxPayload = 1 << 20;

// Connection framing-buffer sizing: one blocking receive pulls up to
// kRecvChunk bytes, and the opportunistic non-blocking drain stops growing a
// wave past kMaxBatchBytes of unparsed data.
constexpr size_t kRecvChunk = 64 << 10;
constexpr size_t kMaxBatchBytes = 256 << 10;

Status ErrnoStatus(const char* op) {
  return Status::IoError(std::string(op) + ": " + strerror(errno));
}

Status WriteFull(int fd, const uint8_t* src, size_t n) {
  size_t done = 0;
  while (done < n) {
    ssize_t w = ::send(fd, src + done, n - done, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) {
        continue;
      }
      return ErrnoStatus("send");
    }
    done += static_cast<size_t>(w);
  }
  return Status::Ok();
}

}  // namespace

Result<std::unique_ptr<IngestServer>> IngestServer::Start(MonitoringDaemon* daemon,
                                                          uint16_t port) {
  std::unique_ptr<IngestServer> server(new IngestServer(daemon));
  MetricsRegistry* reg = daemon->metrics();
  server->connections_metric_ = reg->AddCounter("loom_net_connections_total");
  server->records_metric_ = reg->AddCounter("loom_net_records_total");
  server->bytes_metric_ = reg->AddCounter("loom_net_received_bytes");
  server->rejected_metric_ = reg->AddCounter("loom_net_rejected_total");
  server->scrapes_metric_ = reg->AddCounter("loom_net_scrapes_total");
  server->standing_subs_metric_ = reg->AddCounter("loom_net_standing_subscriptions_total");
  server->listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (server->listen_fd_ < 0) {
    return ErrnoStatus("socket");
  }
  int one = 1;
  ::setsockopt(server->listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(server->listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    return ErrnoStatus("bind");
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(server->listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    return ErrnoStatus("getsockname");
  }
  server->port_ = ntohs(addr.sin_port);
  if (::listen(server->listen_fd_, 16) != 0) {
    return ErrnoStatus("listen");
  }
  server->accept_thread_ = std::thread([raw = server.get()] { raw->AcceptLoop(); });
  return server;
}

IngestServer::~IngestServer() {
  stop_.store(true, std::memory_order_release);
  // Closing the listener unblocks accept(); shutdown is belt-and-braces.
  // listen_fd_ itself is only overwritten after the accept thread joins —
  // AcceptLoop reads it concurrently until then.
  if (listen_fd_ >= 0) {
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
  }
  if (accept_thread_.joinable()) {
    accept_thread_.join();
  }
  listen_fd_ = -1;
  std::vector<std::thread> threads;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (int fd : connection_fds_) {
      ::shutdown(fd, SHUT_RDWR);  // unblocks any recv() in flight
    }
    threads.swap(connection_threads_);
  }
  for (std::thread& t : threads) {
    if (t.joinable()) {
      t.join();
    }
  }
}

void IngestServer::BindSource(uint32_t source_id, SourceChannel* channel) {
  std::lock_guard<std::mutex> lock(mu_);
  channels_[source_id] = channel;
}

void IngestServer::AcceptLoop() {
  // Set before the thread starts and stable until after it joins; reading
  // the member in the loop would race the destructor's reset.
  const int listen_fd = listen_fd_;
  for (;;) {
    int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) {
      if (stop_.load(std::memory_order_acquire)) {
        return;
      }
      if (errno == EINTR) {
        continue;
      }
      return;  // listener closed
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    connections_.fetch_add(1, std::memory_order_relaxed);
    connections_metric_->Increment();
    std::lock_guard<std::mutex> lock(mu_);
    connection_fds_.push_back(fd);
    connection_threads_.emplace_back([this, fd] { ConnectionLoop(fd); });
  }
}

void IngestServer::ConnectionLoop(int fd) {
  // Clients buffer many records per send (IngestClient::kBufferSize), so a
  // wave of records usually arrives in one TCP segment burst. Parse the wave
  // out of a framing buffer and publish runs of same-source records under a
  // single producer-lock acquisition, instead of one header read + one
  // payload read + one lock per record.
  std::vector<uint8_t> buf;  // [start, buf.size()) holds unparsed bytes
  size_t start = 0;
  struct Frame {
    uint32_t source_id;
    size_t off;  // payload offset in buf
    uint32_t len;
  };
  std::vector<Frame> frames;

  // Appends up to kRecvChunk bytes. Returns false when no data is available
  // (EOF, or EAGAIN in non-blocking mode).
  auto fill = [&](bool nonblocking) -> Result<bool> {
    const size_t old = buf.size();
    buf.resize(old + kRecvChunk);
    for (;;) {
      ssize_t r = ::recv(fd, buf.data() + old, kRecvChunk, nonblocking ? MSG_DONTWAIT : 0);
      if (r < 0) {
        buf.resize(old);
        if (errno == EINTR) {
          continue;
        }
        if (nonblocking && (errno == EAGAIN || errno == EWOULDBLOCK)) {
          return false;
        }
        return Status::IoError(std::string("recv: ") + strerror(errno));
      }
      if (r == 0) {
        buf.resize(old);
        return false;  // EOF (mid-frame leftovers just drop the connection)
      }
      buf.resize(old + static_cast<size_t>(r));
      return true;
    }
  };

  bool first_wave = true;
  for (;;) {
    if (stop_.load(std::memory_order_acquire)) {
      break;
    }
    // Compact the partial frame (if any) to the front, then block for the
    // next wave and drain whatever else is already on the wire.
    if (start > 0) {
      buf.erase(buf.begin(), buf.begin() + static_cast<ptrdiff_t>(start));
      start = 0;
    }
    auto got = fill(/*nonblocking=*/false);
    if (!got.ok() || !got.value()) {
      break;
    }
    // HTTP scrape detection: the binary framing starts with a source id, and
    // no real source decodes to ASCII "GET " (0x20544547). Serve the metrics
    // page and close — one scrape per connection, like Prometheus expects
    // from an HTTP/1.0 target.
    if (first_wave && buf.size() >= 4 && std::memcmp(buf.data(), "GET ", 4) == 0) {
      ServeMetrics(fd);
      ::close(fd);
      return;
    }
    // Standing-query text commands ride the same first-bytes dispatch:
    // "SUB " / "REG " decode to source ids 0x20425553 / 0x20474552, outside
    // any plausible source range just like "GET ".
    if (first_wave && buf.size() >= 4 &&
        (std::memcmp(buf.data(), "SUB ", 4) == 0 || std::memcmp(buf.data(), "REG ", 4) == 0)) {
      ServeStanding(fd, std::move(buf));
      ::close(fd);
      return;
    }
    first_wave = false;
    while (buf.size() - start < kMaxBatchBytes) {
      auto more = fill(/*nonblocking=*/true);
      if (!more.ok() || !more.value()) {
        break;
      }
    }

    // Parse complete frames; a partial frame stays for the next wave.
    frames.clear();
    bool protocol_error = false;
    while (buf.size() - start >= 8) {
      const uint32_t source_id = LoadU32(buf.data() + start);
      const uint32_t payload_len = LoadU32(buf.data() + start + 4);
      if (payload_len > kMaxPayload) {
        protocol_error = true;  // drop the connection after this wave
        break;
      }
      if (buf.size() - start < 8ull + payload_len) {
        break;
      }
      frames.push_back(Frame{source_id, start + 8, payload_len});
      start += 8 + payload_len;
    }

    // Publish runs of consecutive same-source frames under one lock.
    size_t i = 0;
    while (i < frames.size()) {
      size_t j = i;
      while (j < frames.size() && frames[j].source_id == frames[i].source_id) {
        ++j;
      }
      uint64_t run_bytes = 0;
      {
        // Serialize producers: the daemon channel is single-producer.
        std::lock_guard<std::mutex> lock(mu_);
        auto it = channels_.find(frames[i].source_id);
        if (it == channels_.end()) {
          rejected_.fetch_add(j - i, std::memory_order_relaxed);
          rejected_metric_->Increment(j - i);
          i = j;
          continue;
        }
        for (size_t k = i; k < j; ++k) {
          it->second->Publish(std::span<const uint8_t>(buf.data() + frames[k].off,
                                                       frames[k].len));
          run_bytes += frames[k].len;
        }
      }
      records_.fetch_add(j - i, std::memory_order_relaxed);
      records_metric_->Increment(j - i);
      bytes_.fetch_add(run_bytes, std::memory_order_relaxed);
      bytes_metric_->Increment(run_bytes);
      i = j;
    }
    if (protocol_error) {
      rejected_.fetch_add(1, std::memory_order_relaxed);
      rejected_metric_->Increment();
      break;
    }
  }
  ::close(fd);
}

void IngestServer::ServeMetrics(int fd) {
  scrapes_metric_->Increment();
  const std::string body = daemon_->DumpMetrics();
  std::string response;
  response.reserve(body.size() + 128);
  response += "HTTP/1.0 200 OK\r\n";
  response += "Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n";
  response += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  response += "Connection: close\r\n\r\n";
  response += body;
  (void)WriteFull(fd, reinterpret_cast<const uint8_t*>(response.data()), response.size());
}

namespace {

Status WriteLine(int fd, const std::string& line) {
  return WriteFull(fd, reinterpret_cast<const uint8_t*>(line.data()), line.size());
}

std::vector<std::string> SplitTokens(const std::string& s) {
  std::vector<std::string> out;
  size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && (s[i] == ' ' || s[i] == '\t')) {
      ++i;
    }
    size_t j = i;
    while (j < s.size() && s[j] != ' ' && s[j] != '\t') {
      ++j;
    }
    if (j > i) {
      out.push_back(s.substr(i, j - i));
    }
    i = j;
  }
  return out;
}

bool ParseU64Token(const std::string& tok, uint64_t* out) {
  if (tok.empty()) {
    return false;
  }
  char* end = nullptr;
  errno = 0;
  const unsigned long long v = strtoull(tok.c_str(), &end, 10);
  if (errno != 0 || end != tok.c_str() + tok.size()) {
    return false;
  }
  *out = v;
  return true;
}

std::string FormatEventLine(const StandingEvent& ev) {
  char buf[256];
  if (ev.kind == StandingEvent::Kind::kWindow) {
    const StandingWindowResult& w = ev.window;
    char value[40];
    if (w.has_value) {
      snprintf(value, sizeof(value), "%.17g", w.value);
    } else {
      snprintf(value, sizeof(value), "nan");
    }
    snprintf(buf, sizeof(buf), "WINDOW %llu %llu %llu %llu %llu %s %d\n",
             static_cast<unsigned long long>(w.query_id),
             static_cast<unsigned long long>(w.window_index),
             static_cast<unsigned long long>(w.window_start),
             static_cast<unsigned long long>(w.window_end),
             static_cast<unsigned long long>(w.count), value, w.alert_firing ? 1 : 0);
  } else {
    const StandingAlertEvent& a = ev.alert;
    snprintf(buf, sizeof(buf), "ALERT %llu %s %llu %llu %.17g %.17g\n",
             static_cast<unsigned long long>(a.query_id), a.firing ? "FIRING" : "RESOLVED",
             static_cast<unsigned long long>(a.window_start),
             static_cast<unsigned long long>(a.window_end), a.value, a.threshold);
  }
  return buf;
}

}  // namespace

void IngestServer::ServeStanding(int fd, std::vector<uint8_t> initial) {
  // Complete the command line (the first wave may have split it).
  std::string line(initial.begin(), initial.end());
  while (line.find('\n') == std::string::npos) {
    if (line.size() > 1024) {
      (void)WriteLine(fd, "ERR command line too long\n");
      return;
    }
    char chunk[256];
    ssize_t r = ::recv(fd, chunk, sizeof(chunk), 0);
    if (r < 0 && errno == EINTR) {
      continue;
    }
    if (r <= 0) {
      return;  // client went away mid-command
    }
    line.append(chunk, static_cast<size_t>(r));
  }
  line.resize(line.find('\n'));
  if (!line.empty() && line.back() == '\r') {
    line.pop_back();
  }

  std::vector<std::string> tok = SplitTokens(line);
  if (tok.empty()) {
    (void)WriteLine(fd, "ERR empty command\n");
    return;
  }
  if (tok[0] == "SUB") {
    uint64_t query_id = 0;
    if (tok.size() != 2 || !ParseU64Token(tok[1], &query_id)) {
      (void)WriteLine(fd, "ERR usage: SUB <query_id>\n");
      return;
    }
    if (!WriteLine(fd, "OK\n").ok()) {
      return;
    }
    standing_subs_metric_->Increment();
    StreamStandingEvents(fd, query_id);
    return;
  }
  // REG <name> <source_id> <index_id> <aggregate> <window_nanos>
  //     [<kind> <threshold> <for_windows>]
  if (tok.size() != 6 && tok.size() != 9) {
    (void)WriteLine(fd,
                    "ERR usage: REG <name> <source_id> <index_id> <aggregate> "
                    "<window_nanos> [<above|below|outlier> <threshold> <for_windows>]\n");
    return;
  }
  StandingQuerySpec spec;
  spec.name = tok[1];
  uint64_t source_id = 0;
  uint64_t index_id = 0;
  auto aggregate = ParseStandingAggregate(tok[4]);
  if (!ParseU64Token(tok[2], &source_id) || !ParseU64Token(tok[3], &index_id) ||
      !aggregate.ok() || !ParseU64Token(tok[5], &spec.window_nanos)) {
    (void)WriteLine(fd, "ERR bad REG arguments\n");
    return;
  }
  spec.source_id = static_cast<uint32_t>(source_id);
  spec.index_id = static_cast<uint32_t>(index_id);
  spec.aggregate = aggregate.value();
  if (tok.size() == 9) {
    auto kind = ParseStandingAlertKind(tok[6]);
    uint64_t for_windows = 0;
    char* end = nullptr;
    const double threshold = strtod(tok[7].c_str(), &end);
    if (!kind.ok() || end != tok[7].c_str() + tok[7].size() ||
        !ParseU64Token(tok[8], &for_windows)) {
      (void)WriteLine(fd, "ERR bad alert rule\n");
      return;
    }
    spec.alert.kind = kind.value();
    spec.alert.threshold = threshold;
    spec.alert.for_windows = static_cast<uint32_t>(for_windows);
  }
  auto id = daemon_->AddStandingQuery(spec);
  if (!id.ok()) {
    (void)WriteLine(fd, "ERR " + id.status().message() + "\n");
    return;
  }
  (void)WriteLine(fd, "OK " + std::to_string(id.value()) + "\n");
}

void IngestServer::StreamStandingEvents(int fd, uint64_t query_id) {
  std::shared_ptr<StandingSubscription> sub = daemon_->SubscribeStanding(query_id, 4096);
  if (sub == nullptr) {
    (void)WriteLine(fd, "ERR standing queries unavailable\n");
    return;
  }
  while (!stop_.load(std::memory_order_acquire)) {
    std::vector<StandingEvent> events = sub->Poll(128, 200);
    bool write_failed = false;
    for (const StandingEvent& ev : events) {
      const std::string line = FormatEventLine(ev);
      if (!WriteLine(fd, line).ok()) {
        write_failed = true;
        break;
      }
    }
    if (write_failed) {
      break;
    }
  }
  sub->Close();  // detaches from the engine at its next publish
}

IngestServerStats IngestServer::stats() const {
  IngestServerStats s;
  s.connections = connections_.load(std::memory_order_relaxed);
  s.records = records_.load(std::memory_order_relaxed);
  s.bytes = bytes_.load(std::memory_order_relaxed);
  s.rejected = rejected_.load(std::memory_order_relaxed);
  return s;
}

Result<std::unique_ptr<IngestClient>> IngestClient::Connect(const std::string& host,
                                                            uint16_t port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return ErrnoStatus("socket");
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("bad host address " + host);
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    Status st = ErrnoStatus("connect");
    ::close(fd);
    return st;
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return std::unique_ptr<IngestClient>(new IngestClient(fd));
}

Result<std::unique_ptr<WatchClient>> WatchClient::Connect(const std::string& host,
                                                          uint16_t port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return ErrnoStatus("socket");
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("bad host address " + host);
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    Status st = ErrnoStatus("connect");
    ::close(fd);
    return st;
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return std::unique_ptr<WatchClient>(new WatchClient(fd));
}

WatchClient::~WatchClient() {
  if (fd_ >= 0) {
    ::close(fd_);
  }
}

Status WatchClient::SendLine(const std::string& line) {
  std::string out = line;
  if (out.empty() || out.back() != '\n') {
    out.push_back('\n');
  }
  return WriteFull(fd_, reinterpret_cast<const uint8_t*>(out.data()), out.size());
}

Result<std::string> WatchClient::ReadLine() {
  for (;;) {
    const size_t nl = buf_.find('\n');
    if (nl != std::string::npos) {
      std::string line = buf_.substr(0, nl);
      buf_.erase(0, nl + 1);
      if (!line.empty() && line.back() == '\r') {
        line.pop_back();
      }
      return line;
    }
    char chunk[4096];
    ssize_t r = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (r < 0) {
      if (errno == EINTR) {
        continue;
      }
      return ErrnoStatus("recv");
    }
    if (r == 0) {
      return Status::IoError("connection closed");
    }
    buf_.append(chunk, static_cast<size_t>(r));
  }
}

IngestClient::~IngestClient() {
  (void)Flush();
  if (fd_ >= 0) {
    ::close(fd_);
  }
}

Status IngestClient::Send(uint32_t source_id, std::span<const uint8_t> payload) {
  PutU32(buffer_, source_id);
  PutU32(buffer_, static_cast<uint32_t>(payload.size()));
  buffer_.insert(buffer_.end(), payload.begin(), payload.end());
  if (buffer_.size() >= kBufferSize) {
    return Flush();
  }
  return Status::Ok();
}

Status IngestClient::Flush() {
  if (buffer_.empty()) {
    return Status::Ok();
  }
  Status st = WriteFull(fd_, buffer_.data(), buffer_.size());
  buffer_.clear();
  return st;
}

Result<std::string> FetchMetricsOverHttp(const std::string& host, uint16_t port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return ErrnoStatus("socket");
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("bad host address " + host);
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    Status st = ErrnoStatus("connect");
    ::close(fd);
    return st;
  }
  const std::string request = "GET /metrics HTTP/1.0\r\nHost: " + host + "\r\n\r\n";
  Status st = WriteFull(fd, reinterpret_cast<const uint8_t*>(request.data()), request.size());
  if (!st.ok()) {
    ::close(fd);
    return st;
  }
  std::string response;
  char chunk[4096];
  for (;;) {
    ssize_t r = ::recv(fd, chunk, sizeof(chunk), 0);
    if (r < 0) {
      if (errno == EINTR) {
        continue;
      }
      ::close(fd);
      return ErrnoStatus("recv");
    }
    if (r == 0) {
      break;  // server closes after one response
    }
    response.append(chunk, static_cast<size_t>(r));
  }
  ::close(fd);
  const size_t body_at = response.find("\r\n\r\n");
  if (!response.starts_with("HTTP/") || body_at == std::string::npos) {
    return Status::DataLoss("malformed HTTP response");
  }
  return response.substr(body_at + 4);
}

}  // namespace loom
