#include "src/btreestore/btree_store.h"

#include <algorithm>
#include <cstring>
#include <filesystem>

#include "src/common/codec.h"

namespace loom {

Result<std::unique_ptr<BTreeStore>> BTreeStore::Open(const BTreeOptions& options) {
  if (options.dir.empty()) {
    return Status::InvalidArgument("BTreeOptions.dir must be set");
  }
  if (options.page_size < 64) {
    return Status::InvalidArgument("page_size too small");
  }
  std::error_code ec;
  std::filesystem::create_directories(options.dir, ec);
  if (ec) {
    return Status::IoError("create_directories " + options.dir + ": " + ec.message());
  }
  std::unique_ptr<BTreeStore> store(new BTreeStore(options));
  auto file = File::CreateTruncate(options.dir + "/btree.db");
  if (!file.ok()) {
    return file.status();
  }
  store->file_ = std::move(file.value());
  return store;
}

BTreeStore::~BTreeStore() = default;

Result<uint64_t> BTreeStore::WritePage(const Page& page) {
  std::vector<uint8_t> buf;
  buf.reserve(options_.page_size);
  buf.push_back(page.leaf ? 1 : 0);
  buf.push_back(0);
  buf.push_back(0);
  buf.push_back(0);
  PutU32(buf, static_cast<uint32_t>(page.keys.size()));
  for (size_t i = 0; i < page.keys.size(); ++i) {
    PutU64(buf, page.keys[i]);
    if (page.leaf) {
      PutU32(buf, static_cast<uint32_t>(page.values[i].size()));
      buf.insert(buf.end(), page.values[i].begin(), page.values[i].end());
    } else {
      PutU64(buf, page.children[i]);
    }
  }
  if (buf.size() > options_.page_size) {
    return Status::Internal("page overflow during serialization");
  }
  buf.resize(options_.page_size, 0);
  const uint64_t page_no = next_page_no_++;
  Status st = file_.PWriteAll(page_no * options_.page_size, buf);
  if (!st.ok()) {
    return st;
  }
  ++pages_written_;
  return page_no;
}

Result<BTreeStore::Page> BTreeStore::ReadPage(uint64_t page_no) const {
  std::vector<uint8_t> buf(options_.page_size);
  LOOM_RETURN_IF_ERROR(file_.PReadAll(page_no * options_.page_size, buf));
  Page page;
  page.leaf = buf[0] == 1;
  const uint32_t n = GetU32(buf, 4);
  size_t off = 8;
  for (uint32_t i = 0; i < n; ++i) {
    page.keys.push_back(GetU64(buf, off));
    off += 8;
    if (page.leaf) {
      const uint32_t vlen = GetU32(buf, off);
      off += 4;
      page.values.emplace_back(buf.begin() + static_cast<long>(off),
                               buf.begin() + static_cast<long>(off + vlen));
      off += vlen;
    } else {
      page.children.push_back(GetU64(buf, off));
      off += 8;
    }
  }
  return page;
}

Status BTreeStore::Append(uint64_t key, std::span<const uint8_t> value) {
  if (flushed_) {
    return Status::FailedPrecondition("append after flush");
  }
  if (any_key_ && key <= last_key_) {
    return Status::InvalidArgument("append mode requires strictly increasing keys");
  }
  const size_t entry = LeafEntryBytes(value.size());
  if (entry > PageCapacity()) {
    return Status::InvalidArgument("value too large for page");
  }
  if (spine_.empty()) {
    spine_.emplace_back();
  }
  if (spine_[0].used_bytes + entry > PageCapacity()) {
    // Leaf is full: persist it and register it with the parent spine level.
    Page full = std::move(spine_[0]);
    spine_[0] = Page{};
    auto page_no = WritePage(full);
    if (!page_no.ok()) {
      return page_no.status();
    }
    LOOM_RETURN_IF_ERROR(InsertIntoSpine(1, full.keys.front(), page_no.value()));
  }
  Page& leaf = spine_[0];
  leaf.keys.push_back(key);
  leaf.values.emplace_back(value.begin(), value.end());
  leaf.used_bytes += entry;
  last_key_ = key;
  any_key_ = true;
  ++appends_;
  bytes_ingested_ += 8 + value.size();
  if (options_.appends_per_txn > 0 && ++appends_in_txn_ >= options_.appends_per_txn) {
    appends_in_txn_ = 0;
    return CommitTxn();
  }
  return Status::Ok();
}

Status BTreeStore::CommitTxn() {
  // LMDB-style commit: the dirty rightmost-path pages are copy-on-write
  // written to fresh locations (the previous versions become free pages),
  // then a meta page is written and the file synced. The spine pages stay
  // in memory and keep filling — the next commit rewrites them, which is the
  // write amplification inherent to COW B+trees.
  for (const Page& page : spine_) {
    if (page.keys.empty()) {
      continue;
    }
    auto page_no = WritePage(page);
    if (!page_no.ok()) {
      return page_no.status();
    }
  }
  // Meta page recording the (shadow) root.
  Page meta;
  meta.leaf = false;
  meta.keys.push_back(appends_);
  meta.children.push_back(next_page_no_);
  auto meta_no = WritePage(meta);
  if (!meta_no.ok()) {
    return meta_no.status();
  }
  ++commits_;
  if (options_.sync_on_commit) {
    return file_.Sync();
  }
  return Status::Ok();
}

Status BTreeStore::InsertIntoSpine(size_t level, uint64_t first_key, uint64_t child_page) {
  if (level == spine_.size()) {
    Page root;
    root.leaf = false;
    spine_.push_back(std::move(root));
  }
  if (spine_[level].used_bytes + InteriorEntryBytes() > PageCapacity()) {
    Page full = std::move(spine_[level]);
    Page fresh;
    fresh.leaf = false;
    spine_[level] = std::move(fresh);
    auto page_no = WritePage(full);
    if (!page_no.ok()) {
      return page_no.status();
    }
    LOOM_RETURN_IF_ERROR(InsertIntoSpine(level + 1, full.keys.front(), page_no.value()));
  }
  Page& page = spine_[level];
  page.keys.push_back(first_key);
  page.children.push_back(child_page);
  page.used_bytes += InteriorEntryBytes();
  return Status::Ok();
}

Status BTreeStore::Flush() {
  if (flushed_) {
    return Status::Ok();
  }
  flushed_ = true;
  if (spine_.empty()) {
    return Status::Ok();
  }
  // Write the rightmost spine bottom-up, linking each page into its parent.
  // InsertIntoSpine may grow the spine (root splits), so index explicitly.
  for (size_t level = 0; level < spine_.size(); ++level) {
    Page page = std::move(spine_[level]);
    spine_[level] = Page{};
    if (page.keys.empty()) {
      continue;
    }
    auto page_no = WritePage(page);
    if (!page_no.ok()) {
      return page_no.status();
    }
    if (level + 1 < spine_.size()) {
      LOOM_RETURN_IF_ERROR(InsertIntoSpine(level + 1, page.keys.front(), page_no.value()));
    } else {
      root_page_ = page_no.value();
    }
  }
  spine_.clear();
  return Status::Ok();
}

Result<std::vector<uint8_t>> BTreeStore::Get(uint64_t key) const {
  if (!flushed_) {
    // Search the in-memory spine leaf first (fast path for recent keys).
    if (!spine_.empty()) {
      const Page& leaf = spine_[0];
      auto it = std::lower_bound(leaf.keys.begin(), leaf.keys.end(), key);
      if (it != leaf.keys.end() && *it == key) {
        return leaf.values[static_cast<size_t>(it - leaf.keys.begin())];
      }
      // Descend from the highest spine level through flushed children.
      for (size_t level = spine_.size(); level-- > 1;) {
        const Page& p = spine_[level];
        auto cit = std::upper_bound(p.keys.begin(), p.keys.end(), key);
        if (cit == p.keys.begin()) {
          continue;  // key belongs to a younger (in-memory) subtree
        }
        // Found a flushed subtree that may contain the key.
        const size_t idx = static_cast<size_t>(cit - p.keys.begin()) - 1;
        // If a lower spine page starts at or before the key, the key lives in
        // the in-memory part instead.
        const Page& below = spine_[level - 1];
        if (!below.keys.empty() && key >= below.keys.front()) {
          continue;
        }
        uint64_t page_no = p.children[idx];
        for (;;) {
          auto page = ReadPage(page_no);
          if (!page.ok()) {
            return page.status();
          }
          if (page.value().leaf) {
            const auto& keys = page.value().keys;
            auto kit = std::lower_bound(keys.begin(), keys.end(), key);
            if (kit != keys.end() && *kit == key) {
              return page.value().values[static_cast<size_t>(kit - keys.begin())];
            }
            return Status::NotFound("key not found");
          }
          const auto& keys = page.value().keys;
          auto kit = std::upper_bound(keys.begin(), keys.end(), key);
          if (kit == keys.begin()) {
            return Status::NotFound("key not found");
          }
          page_no = page.value().children[static_cast<size_t>(kit - keys.begin()) - 1];
        }
      }
    }
    return Status::NotFound("key not found");
  }
  if (next_page_no_ == 0) {
    return Status::NotFound("empty tree");
  }
  uint64_t page_no = root_page_;
  for (;;) {
    auto page = ReadPage(page_no);
    if (!page.ok()) {
      return page.status();
    }
    if (page.value().leaf) {
      const auto& keys = page.value().keys;
      auto it = std::lower_bound(keys.begin(), keys.end(), key);
      if (it != keys.end() && *it == key) {
        return page.value().values[static_cast<size_t>(it - keys.begin())];
      }
      return Status::NotFound("key not found");
    }
    const auto& keys = page.value().keys;
    auto it = std::upper_bound(keys.begin(), keys.end(), key);
    if (it == keys.begin()) {
      return Status::NotFound("key not found");
    }
    page_no = page.value().children[static_cast<size_t>(it - keys.begin()) - 1];
  }
}

BTreeStats BTreeStore::stats() const {
  BTreeStats s;
  s.appends = appends_;
  s.bytes_ingested = bytes_ingested_;
  s.pages_written = pages_written_;
  s.commits = commits_;
  s.height = spine_.empty() ? 1 : spine_.size();
  return s;
}

}  // namespace loom
