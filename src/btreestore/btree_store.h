// Persistent B+tree baseline (LMDB style) for the data-structure ingest
// comparison (§6.3, Fig. 15).
//
// Following the paper's methodology, ingest uses APPEND mode — keys arrive in
// strictly increasing order, so the tree grows along its rightmost path and
// each page is written once when it fills (LMDB's fastest bulk-load path).
// The per-record cost is page formatting plus parent separator maintenance;
// page splits propagate up the (in-memory) rightmost spine. Interior and
// filled leaf pages live in a single page file addressed by page number.

#ifndef SRC_BTREESTORE_BTREE_STORE_H_
#define SRC_BTREESTORE_BTREE_STORE_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "src/common/file.h"
#include "src/common/status.h"

namespace loom {

struct BTreeOptions {
  std::string dir;
  size_t page_size = 4096;
  // LMDB-style transactional commits: every `appends_per_txn` appends, the
  // dirty rightmost-path pages are copy-on-write rewritten to fresh page
  // locations, a meta page is written, and (by default) the file is synced.
  // This is the durability work that keeps a B+tree behind a log even in
  // APPEND mode (§6.3).
  size_t appends_per_txn = 1000;
  bool sync_on_commit = true;
};

struct BTreeStats {
  uint64_t appends = 0;
  uint64_t bytes_ingested = 0;
  uint64_t pages_written = 0;
  uint64_t commits = 0;
  uint64_t height = 0;
};

class BTreeStore {
 public:
  static Result<std::unique_ptr<BTreeStore>> Open(const BTreeOptions& options);
  ~BTreeStore();

  BTreeStore(const BTreeStore&) = delete;
  BTreeStore& operator=(const BTreeStore&) = delete;

  // APPEND-mode insert: `key` must be strictly greater than every key
  // appended so far. Single ingest thread.
  Status Append(uint64_t key, std::span<const uint8_t> value);

  // Point lookup walking root-to-leaf (reads flushed pages from disk, the
  // in-memory rightmost spine otherwise).
  Result<std::vector<uint8_t>> Get(uint64_t key) const;

  // Writes the rightmost spine so the whole tree is on disk.
  Status Flush();

  BTreeStats stats() const;

 private:
  // In-memory page under construction. Leaf entries: (key, value bytes);
  // interior entries: (first key of child subtree, child page number).
  struct Page {
    bool leaf = true;
    std::vector<uint64_t> keys;
    std::vector<std::vector<uint8_t>> values;  // leaf only
    std::vector<uint64_t> children;            // interior only
    size_t used_bytes = 0;
  };

  explicit BTreeStore(const BTreeOptions& options) : options_(options) {}

  size_t LeafEntryBytes(size_t value_len) const { return 8 + 4 + value_len; }
  size_t InteriorEntryBytes() const { return 8 + 8; }
  size_t PageCapacity() const { return options_.page_size - 16; }  // header space

  // Serializes and writes `page`, returning its page number.
  Result<uint64_t> WritePage(const Page& page);
  // Inserts (first_key, child) into spine level `level`, creating parents as
  // needed.
  Status InsertIntoSpine(size_t level, uint64_t first_key, uint64_t child_page);
  Result<Page> ReadPage(uint64_t page_no) const;
  // COW-rewrites the dirty spine + meta page and syncs (txn commit).
  Status CommitTxn();

  const BTreeOptions options_;
  File file_;
  uint64_t next_page_no_ = 0;
  // spine_[0] is the active leaf, higher entries are its ancestors up to the
  // root (spine_.back()).
  std::vector<Page> spine_;
  uint64_t last_key_ = 0;
  bool any_key_ = false;
  bool flushed_ = false;
  uint64_t root_page_ = 0;

  uint64_t appends_ = 0;
  uint64_t bytes_ingested_ = 0;
  uint64_t pages_written_ = 0;
  uint64_t commits_ = 0;
  size_t appends_in_txn_ = 0;
};

}  // namespace loom

#endif  // SRC_BTREESTORE_BTREE_STORE_H_
