// Minimal JSON writer for the BENCH_*.json result files.
//
// Every bench used to hand-roll fprintf JSON; this centralizes escaping,
// comma placement, and number formatting, and adds one structured section
// every bench now emits: a metrics-registry snapshot (counters, gauges, and
// per-histogram count/sum/percentiles), so harness runs capture the engine's
// self-telemetry alongside the figure numbers.
//
// Usage:
//   JsonWriter w;
//   w.Field("records", uint64_t{400000});
//   w.Field("warm_speedup", 3.1);
//   w.BeginObject("config");
//   w.Field("chunk_size", 16384);
//   w.EndObject();
//   w.MetricsSection("metrics", engine->metrics()->Snapshot());
//   w.WriteFile("BENCH_foo.json");

#ifndef SRC_BENCHUTIL_BENCH_JSON_H_
#define SRC_BENCHUTIL_BENCH_JSON_H_

#include <cstdint>
#include <string>

#include "src/common/metrics.h"
#include "src/common/status.h"

namespace loom {

class JsonWriter {
 public:
  JsonWriter();

  void Field(const std::string& key, const std::string& value);
  void Field(const std::string& key, const char* value);
  void Field(const std::string& key, double value);
  void Field(const std::string& key, uint64_t value);
  void Field(const std::string& key, int value);
  void Field(const std::string& key, bool value);

  void BeginObject(const std::string& key);
  void EndObject();
  void BeginArray(const std::string& key);
  void ArrayValue(double value);
  void EndArray();

  // Emits `key: {counters: {...}, gauges: {...}, histograms: {name: {count,
  // sum, mean, p50, p90, p99}}}` from a registry snapshot.
  void MetricsSection(const std::string& key, const MetricsSnapshot& snapshot);

  // Closes the document and returns it. The writer is spent afterwards.
  std::string Finish();

  // Finish() + write to `path` (also prints "Wrote <path>" on success).
  Status WriteFile(const std::string& path);

 private:
  void Comma();
  void Key(const std::string& key);

  std::string out_;
  int depth_ = 1;
  bool need_comma_ = false;
  bool finished_ = false;
};

std::string JsonEscape(const std::string& s);

}  // namespace loom

#endif  // SRC_BENCHUTIL_BENCH_JSON_H_
