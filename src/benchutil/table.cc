#include "src/benchutil/table.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

namespace loom {

TablePrinter::TablePrinter(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

void TablePrinter::Print() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_sep = [&] {
    printf("+");
    for (size_t w : widths) {
      for (size_t i = 0; i < w + 2; ++i) {
        printf("-");
      }
      printf("+");
    }
    printf("\n");
  };
  auto print_row = [&](const std::vector<std::string>& row) {
    printf("|");
    for (size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : "";
      printf(" %-*s |", static_cast<int>(widths[c]), cell.c_str());
    }
    printf("\n");
  };
  print_sep();
  print_row(headers_);
  print_sep();
  for (const auto& row : rows_) {
    print_row(row);
  }
  print_sep();
  fflush(stdout);
}

void PrintBanner(const std::string& figure, const std::string& title,
                 const std::string& expectation) {
  printf("\n================================================================================\n");
  printf("%s — %s\n", figure.c_str(), title.c_str());
  printf("Paper expectation: %s\n", expectation.c_str());
  printf("================================================================================\n");
  fflush(stdout);
}

std::string FormatDouble(double v, int precision) {
  char buf[64];
  snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string FormatRate(double per_second) {
  char buf[64];
  if (per_second >= 1e6) {
    snprintf(buf, sizeof(buf), "%.2fM/s", per_second / 1e6);
  } else if (per_second >= 1e3) {
    snprintf(buf, sizeof(buf), "%.1fk/s", per_second / 1e3);
  } else {
    snprintf(buf, sizeof(buf), "%.0f/s", per_second);
  }
  return buf;
}

std::string FormatCount(uint64_t n) {
  char buf[64];
  if (n >= 10'000'000) {
    snprintf(buf, sizeof(buf), "%.1fM", static_cast<double>(n) / 1e6);
  } else if (n >= 10'000) {
    snprintf(buf, sizeof(buf), "%.1fk", static_cast<double>(n) / 1e3);
  } else {
    snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(n));
  }
  return buf;
}

std::string FormatPercent(double fraction01) {
  char buf[64];
  snprintf(buf, sizeof(buf), "%.1f%%", fraction01 * 100.0);
  return buf;
}

std::string FormatSeconds(double seconds) {
  char buf[64];
  if (seconds >= 1.0) {
    snprintf(buf, sizeof(buf), "%.2f s", seconds);
  } else if (seconds >= 1e-3) {
    snprintf(buf, sizeof(buf), "%.1f ms", seconds * 1e3);
  } else {
    snprintf(buf, sizeof(buf), "%.0f us", seconds * 1e6);
  }
  return buf;
}

}  // namespace loom
