// Shared helpers for the benchmark harness binaries: wall timing and aligned
// table printing so each bench reproduces its paper figure as readable rows.

#ifndef SRC_BENCHUTIL_TABLE_H_
#define SRC_BENCHUTIL_TABLE_H_

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

namespace loom {

class WallTimer {
 public:
  WallTimer() : start_(std::chrono::steady_clock::now()) {}

  void Reset() { start_ = std::chrono::steady_clock::now(); }

  double Seconds() const {
    return std::chrono::duration_cast<std::chrono::duration<double>>(
               std::chrono::steady_clock::now() - start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

// Accumulates rows and prints an aligned ASCII table.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  void AddRow(std::vector<std::string> cells);
  void Print() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

// Prints the standard bench banner: figure id, title, and the paper's
// qualitative expectation the run should reproduce.
void PrintBanner(const std::string& figure, const std::string& title,
                 const std::string& expectation);

std::string FormatDouble(double v, int precision = 2);
std::string FormatRate(double per_second);     // e.g. "4.31M/s"
std::string FormatCount(uint64_t n);           // e.g. "1.2M"
std::string FormatPercent(double fraction01);  // e.g. "38.2%"
std::string FormatSeconds(double seconds);     // e.g. "1.24 s" / "830 ms"

}  // namespace loom

#endif  // SRC_BENCHUTIL_TABLE_H_
