#include "src/benchutil/bench_json.h"

#include <cmath>
#include <cstdio>

namespace loom {
namespace {

std::string FormatJsonDouble(double v) {
  if (!std::isfinite(v)) {
    return "null";  // JSON has no Infinity/NaN
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

}  // namespace

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

JsonWriter::JsonWriter() : out_("{\n") {}

void JsonWriter::Comma() {
  if (need_comma_) {
    out_ += ",\n";
  }
  need_comma_ = true;
}

void JsonWriter::Key(const std::string& key) {
  Comma();
  out_.append(static_cast<size_t>(depth_) * 2, ' ');
  out_ += '"';
  out_ += JsonEscape(key);
  out_ += "\": ";
}

void JsonWriter::Field(const std::string& key, const std::string& value) {
  Key(key);
  out_ += '"';
  out_ += JsonEscape(value);
  out_ += '"';
}

void JsonWriter::Field(const std::string& key, const char* value) {
  Field(key, std::string(value));
}

void JsonWriter::Field(const std::string& key, double value) {
  Key(key);
  out_ += FormatJsonDouble(value);
}

void JsonWriter::Field(const std::string& key, uint64_t value) {
  Key(key);
  out_ += std::to_string(value);
}

void JsonWriter::Field(const std::string& key, int value) {
  Key(key);
  out_ += std::to_string(value);
}

void JsonWriter::Field(const std::string& key, bool value) {
  Key(key);
  out_ += value ? "true" : "false";
}

void JsonWriter::BeginObject(const std::string& key) {
  Key(key);
  out_ += "{\n";
  ++depth_;
  need_comma_ = false;
}

void JsonWriter::EndObject() {
  out_ += '\n';
  --depth_;
  out_.append(static_cast<size_t>(depth_) * 2, ' ');
  out_ += '}';
  need_comma_ = true;
}

void JsonWriter::BeginArray(const std::string& key) {
  Key(key);
  out_ += '[';
  need_comma_ = false;
}

void JsonWriter::ArrayValue(double value) {
  if (need_comma_) {
    out_ += ", ";
  }
  need_comma_ = true;
  out_ += FormatJsonDouble(value);
}

void JsonWriter::EndArray() {
  out_ += ']';
  need_comma_ = true;
}

void JsonWriter::MetricsSection(const std::string& key, const MetricsSnapshot& snapshot) {
  BeginObject(key);
  BeginObject("counters");
  for (const auto& [name, value] : snapshot.counters) {
    Field(name, value);
  }
  EndObject();
  BeginObject("gauges");
  for (const auto& [name, value] : snapshot.gauges) {
    Field(name, value);
  }
  EndObject();
  BeginObject("histograms");
  for (const auto& [name, hist] : snapshot.histograms) {
    BeginObject(name);
    Field("count", hist.count);
    Field("sum", hist.sum);
    Field("mean", hist.Mean());
    Field("p50", hist.Percentile(50.0));
    Field("p90", hist.Percentile(90.0));
    Field("p99", hist.Percentile(99.0));
    EndObject();
  }
  EndObject();
  EndObject();
}

std::string JsonWriter::Finish() {
  if (!finished_) {
    out_ += "\n}\n";
    finished_ = true;
  }
  return out_;
}

Status JsonWriter::WriteFile(const std::string& path) {
  const std::string doc = Finish();
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::IoError("open " + path + " for write failed");
  }
  const size_t written = std::fwrite(doc.data(), 1, doc.size(), f);
  const int close_rc = std::fclose(f);
  if (written != doc.size() || close_rc != 0) {
    return Status::IoError("write " + path + " failed");
  }
  std::printf("Wrote %s\n", path.c_str());
  return Status::Ok();
}

}  // namespace loom
