#include "src/fishstore/fishstore.h"

#include <cstring>
#include <filesystem>

#include "src/common/codec.h"
#include "src/hybridlog/cached_reader.h"

namespace loom {

namespace {

// Record layout: fixed header, then n_slots chain slots, then payload.
//   u32 source_id | u32 payload_len | u64 ts | u32 n_slots | u32 reserved
//   n_slots x { u32 psf_id | u32 reserved | u64 prev_addr }
constexpr size_t kFixedHeader = 24;
constexpr size_t kSlotSize = 16;
constexpr uint32_t kPadMarker = 0xFFFFFFFFu;
constexpr size_t kScanWindow = 64 << 10;

Clock* DefaultClock() {
  static MonotonicClock clock;
  return &clock;
}

}  // namespace

Result<std::unique_ptr<FishStore>> FishStore::Open(const FishStoreOptions& options) {
  if (options.dir.empty()) {
    return Status::InvalidArgument("FishStoreOptions.dir must be set");
  }
  std::error_code ec;
  std::filesystem::create_directories(options.dir, ec);
  if (ec) {
    return Status::IoError("create_directories " + options.dir + ": " + ec.message());
  }
  HybridLogOptions log_opts;
  log_opts.block_size = options.block_size;
  auto log = HybridLog::Create(options.dir + "/fishstore.log", log_opts);
  if (!log.ok()) {
    return log.status();
  }
  return std::unique_ptr<FishStore>(new FishStore(options, std::move(log.value())));
}

FishStore::FishStore(const FishStoreOptions& options, std::unique_ptr<HybridLog> log)
    : options_(options),
      clock_(options.clock != nullptr ? options.clock : DefaultClock()),
      log_(std::move(log)) {}

FishStore::~FishStore() = default;

Result<uint32_t> FishStore::RegisterPsf(PsfFunc func) {
  if (!func) {
    return Status::InvalidArgument("psf must be callable");
  }
  PsfState state;
  state.id = next_psf_id_++;
  state.open = true;
  state.func = std::move(func);
  psfs_.push_back(std::move(state));
  return psfs_.back().id;
}

Status FishStore::DeregisterPsf(uint32_t psf_id) {
  for (PsfState& psf : psfs_) {
    if (psf.id == psf_id && psf.open) {
      psf.open = false;
      return Status::Ok();
    }
  }
  return Status::NotFound("psf not registered");
}

Status FishStore::Push(uint32_t source_id, std::span<const uint8_t> payload) {
  if (source_id == kPadMarker) {
    return Status::InvalidArgument("source id reserved");
  }
  const TimestampNanos now = clock_->NowNanos();

  // Subset hashing: evaluate every installed PSF on the ingest path. This is
  // the FishStore cost model the paper measures — more PSFs, more per-record
  // CPU (Fig. 14).
  struct Match {
    uint32_t psf_id;
    uint64_t value;
    uint64_t prev;
  };
  // Bounded small; reuse of a static buffer avoids per-push allocation.
  thread_local std::vector<Match> matches;
  matches.clear();
  for (const PsfState& psf : psfs_) {
    if (!psf.open) {
      continue;
    }
    ++psf_evaluations_;
    std::optional<uint64_t> value = psf.func(source_id, payload);
    if (value.has_value()) {
      matches.push_back(Match{psf.id, *value, kNullAddr});
    }
  }

  const size_t need = kFixedHeader + matches.size() * kSlotSize + payload.size();
  auto reserved = log_->AppendReserve(need);
  if (!reserved.ok()) {
    return reserved.status();
  }
  const uint64_t addr = reserved.value().first;
  uint8_t* dst = reserved.value().second;

  // Resolve chain heads and point them at this record.
  {
    std::lock_guard<std::mutex> lock(heads_mu_);
    for (Match& m : matches) {
      ChainKey key{m.psf_id, m.value};
      auto [it, inserted] = chain_heads_.try_emplace(key, addr);
      if (!inserted) {
        m.prev = it->second;
        it->second = addr;
      }
    }
  }

  StoreU32(dst, source_id);
  StoreU32(dst + 4, static_cast<uint32_t>(payload.size()));
  StoreU64(dst + 8, now);
  StoreU32(dst + 16, static_cast<uint32_t>(matches.size()));
  StoreU32(dst + 20, 0);
  size_t off = kFixedHeader;
  for (const Match& m : matches) {
    StoreU32(dst + off, m.psf_id);
    StoreU32(dst + off + 4, 0);
    StoreU64(dst + off + 8, m.prev);
    off += kSlotSize;
  }
  if (!payload.empty()) {
    std::memcpy(dst + off, payload.data(), payload.size());
  }
  log_->Publish();
  ++records_ingested_;
  bytes_ingested_ += payload.size();
  return Status::Ok();
}

void FishStore::Sync() { log_->Publish(); }

Status FishStore::FullScan(const RecordCallback& cb) const {
  const uint64_t tail = log_->queryable_tail();
  CachedLogReader reader(log_.get(), tail, kScanWindow);
  const size_t bs = log_->block_size();
  uint64_t addr = 0;
  while (addr + kFixedHeader <= tail) {
    // Records never span blocks; a position too close to the block end can
    // only hold padding.
    const uint64_t block_end = addr - (addr % bs) + bs;
    if (block_end - addr < kFixedHeader) {
      addr = block_end;
      continue;
    }
    auto peek = reader.Fetch(addr, 4);
    if (!peek.ok()) {
      return peek.status();
    }
    if (LoadU32(peek.value().data()) == kPadMarker) {
      addr = addr - (addr % bs) + bs;  // block padding
      continue;
    }
    auto head = reader.Fetch(addr, kFixedHeader);
    if (!head.ok()) {
      return head.status();
    }
    const uint8_t* h = head.value().data();
    const uint32_t source_id = LoadU32(h);
    const uint32_t payload_len = LoadU32(h + 4);
    const TimestampNanos ts = LoadU64(h + 8);
    const uint32_t n_slots = LoadU32(h + 16);
    const size_t total = kFixedHeader + n_slots * kSlotSize + payload_len;
    if (addr + total > tail) {
      break;
    }
    auto payload = reader.Fetch(addr + kFixedHeader + n_slots * kSlotSize, payload_len);
    if (!payload.ok()) {
      return payload.status();
    }
    Record rec;
    rec.source_id = source_id;
    rec.ts = ts;
    rec.addr = addr;
    rec.payload = payload.value();
    if (!cb(rec)) {
      return Status::Ok();
    }
    addr += total;
  }
  return Status::Ok();
}

Status FishStore::PsfScan(uint32_t psf_id, uint64_t value, const RecordCallback& cb) const {
  uint64_t addr = kNullAddr;
  {
    std::lock_guard<std::mutex> lock(heads_mu_);
    auto it = chain_heads_.find(ChainKey{psf_id, value});
    if (it != chain_heads_.end()) {
      addr = it->second;
    }
  }
  const uint64_t tail = log_->queryable_tail();
  CachedLogReader reader(log_.get(), tail, kScanWindow);
  while (addr != kNullAddr && addr + kFixedHeader <= tail) {
    auto head = reader.Fetch(addr, kFixedHeader);
    if (!head.ok()) {
      return head.status();
    }
    const uint8_t* h = head.value().data();
    const uint32_t source_id = LoadU32(h);
    const uint32_t payload_len = LoadU32(h + 4);
    const TimestampNanos ts = LoadU64(h + 8);
    const uint32_t n_slots = LoadU32(h + 16);
    auto slots = reader.Fetch(addr + kFixedHeader, n_slots * kSlotSize);
    if (!slots.ok()) {
      return slots.status();
    }
    uint64_t prev = kNullAddr;
    for (uint32_t i = 0; i < n_slots; ++i) {
      if (LoadU32(slots.value().data() + i * kSlotSize) == psf_id) {
        prev = LoadU64(slots.value().data() + i * kSlotSize + 8);
        break;
      }
    }
    auto payload = reader.Fetch(addr + kFixedHeader + n_slots * kSlotSize, payload_len);
    if (!payload.ok()) {
      return payload.status();
    }
    Record rec;
    rec.source_id = source_id;
    rec.ts = ts;
    rec.addr = addr;
    rec.payload = payload.value();
    if (!cb(rec)) {
      return Status::Ok();
    }
    addr = prev;
  }
  return Status::Ok();
}

FishStoreStats FishStore::stats() const {
  FishStoreStats s;
  s.records_ingested = records_ingested_;
  s.bytes_ingested = bytes_ingested_;
  s.psf_evaluations = psf_evaluations_;
  {
    std::lock_guard<std::mutex> lock(heads_mu_);
    s.chain_heads = chain_heads_.size();
  }
  s.log = log_->stats();
  return s;
}

}  // namespace loom
