// FishStore-style baseline: a shared append-only log with predicated subset
// function (PSF) indexing (Xie et al., SIGMOD 2019; §2.3/§6 of the Loom
// paper).
//
// A PSF maps each ingested record to an optional property value; records with
// the same (psf, value) pair are linked into a hash chain of back-pointers
// embedded in the record headers ("subset hashing"). PSF chains make
// exact-match retrieval fast, but:
//   * PSFs are evaluated on the ingest path (per-record CPU cost that grows
//     with the number of installed PSFs — the probe-effect driver in Fig. 14);
//   * there is no time index, so time-bounded queries must either walk a PSF
//     chain from its head (cost grows with lookback, Fig. 17) or scan the
//     whole interleaved log (Fig. 12/13).
//
// This reimplementation keeps exactly those properties on top of the same
// hybrid-log storage substrate Loom uses, so data-structure differences (not
// file formats) drive the comparison.

#ifndef SRC_FISHSTORE_FISHSTORE_H_
#define SRC_FISHSTORE_FISHSTORE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/clock.h"
#include "src/common/status.h"
#include "src/hybridlog/hybrid_log.h"

namespace loom {

struct FishStoreOptions {
  std::string dir;
  size_t block_size = 4 << 20;
  Clock* clock = nullptr;  // defaults to a process-wide monotonic clock
};

struct FishStoreStats {
  uint64_t records_ingested = 0;
  uint64_t bytes_ingested = 0;
  uint64_t psf_evaluations = 0;
  uint64_t chain_heads = 0;
  HybridLogStats log;
};

class FishStore {
 public:
  // Returns the property value for a record, or nullopt if the record is not
  // part of this PSF's subset.
  using PsfFunc = std::function<std::optional<uint64_t>(uint32_t source_id,
                                                        std::span<const uint8_t> payload)>;

  struct Record {
    uint32_t source_id = 0;
    TimestampNanos ts = 0;  // arrival time (carried in the record, not indexed)
    uint64_t addr = 0;
    std::span<const uint8_t> payload;
  };

  using RecordCallback = std::function<bool(const Record&)>;

  static Result<std::unique_ptr<FishStore>> Open(const FishStoreOptions& options);
  ~FishStore();

  FishStore(const FishStore&) = delete;
  FishStore& operator=(const FishStore&) = delete;

  // Installs a PSF; applies to records ingested afterwards. Ingest thread.
  Result<uint32_t> RegisterPsf(PsfFunc func);
  Status DeregisterPsf(uint32_t psf_id);

  // Appends one record, evaluating all installed PSFs (ingest thread).
  Status Push(uint32_t source_id, std::span<const uint8_t> payload);

  // Makes pushed records visible to scans.
  void Sync();

  // Scans the full interleaved log oldest-first. This is the only way to
  // answer queries no PSF anticipated (any thread).
  Status FullScan(const RecordCallback& cb) const;

  // Walks the (psf, value) chain newest-first (any thread).
  Status PsfScan(uint32_t psf_id, uint64_t value, const RecordCallback& cb) const;

  FishStoreStats stats() const;

 private:
  struct PsfState {
    uint32_t id = 0;
    bool open = false;
    PsfFunc func;
  };

  FishStore(const FishStoreOptions& options, std::unique_ptr<HybridLog> log);

  const FishStoreOptions options_;
  Clock* clock_;
  std::unique_ptr<HybridLog> log_;

  std::vector<PsfState> psfs_;  // ingest thread only
  uint32_t next_psf_id_ = 1;

  struct ChainKey {
    uint32_t psf_id;
    uint64_t value;
    bool operator==(const ChainKey& o) const { return psf_id == o.psf_id && value == o.value; }
  };
  struct ChainKeyHash {
    size_t operator()(const ChainKey& k) const {
      uint64_t h = k.value * 0x9e3779b97f4a7c15ULL ^ (static_cast<uint64_t>(k.psf_id) << 32);
      return static_cast<size_t>(h ^ (h >> 29));
    }
  };

  // Chain heads: written by ingest, read by queries.
  mutable std::mutex heads_mu_;
  std::unordered_map<ChainKey, uint64_t, ChainKeyHash> chain_heads_;

  uint64_t records_ingested_ = 0;
  uint64_t bytes_ingested_ = 0;
  uint64_t psf_evaluations_ = 0;
};

}  // namespace loom

#endif  // SRC_FISHSTORE_FISHSTORE_H_
