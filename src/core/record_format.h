// On-log record framing for the record log.
//
// Every record is a 24-byte header followed by the raw payload bytes:
//   u32 source_id | u32 payload_len | u64 timestamp | u64 prev_addr
// `prev_addr` is the back-pointer to the previous record of the same source
// (kNullAddr for the first), forming the per-source record chain (§4.2).
//
// The record log is divided into fixed-size chunks; a record never spans a
// chunk. When a record does not fit in the active chunk's remainder, the
// remainder is filled with 0xFF bytes (a source_id of 0xFFFFFFFF therefore
// reads as "padding: skip to the next chunk boundary").

#ifndef SRC_CORE_RECORD_FORMAT_H_
#define SRC_CORE_RECORD_FORMAT_H_

#include <cstdint>
#include <span>

#include "src/common/clock.h"
#include "src/common/codec.h"

namespace loom {

inline constexpr uint32_t kPadSourceId = 0xFFFFFFFFu;
inline constexpr size_t kRecordHeaderSize = 24;

struct RecordHeader {
  uint32_t source_id = 0;
  uint32_t payload_len = 0;
  TimestampNanos ts = 0;
  uint64_t prev_addr = 0;

  void EncodeTo(uint8_t* dst) const {
    StoreU32(dst, source_id);
    StoreU32(dst + 4, payload_len);
    StoreU64(dst + 8, ts);
    StoreU64(dst + 16, prev_addr);
  }

  static RecordHeader Decode(const uint8_t* src) {
    RecordHeader h;
    h.source_id = LoadU32(src);
    h.payload_len = LoadU32(src + 4);
    h.ts = LoadU64(src + 8);
    h.prev_addr = LoadU64(src + 16);
    return h;
  }
};

// A record as seen by query callbacks. `payload` points into a scan buffer
// and is only valid for the duration of the callback.
struct RecordView {
  uint32_t source_id = 0;
  TimestampNanos ts = 0;
  uint64_t addr = 0;  // record log address (stable identifier)
  std::span<const uint8_t> payload;
};

}  // namespace loom

#endif  // SRC_CORE_RECORD_FORMAT_H_
