// AVX2 kernels (x86-64). Compiled with -mavx2 for this translation unit
// only; the dispatcher guards selection behind a runtime
// __builtin_cpu_supports check, so nothing here executes on older parts.
//
// Bit-exactness notes:
//   * classify counts edges <= value with ordered compares (NaN counts 0)
//     and then blends NaN lanes to the overflow bin, which is exactly what
//     HistogramSpec::BinOf's upper_bound produces. Specs wider than
//     kMaxLinearEdges fall back to the scalar binary search — O(n log m)
//     beats an m-edge linear pass there, and the results are identical by
//     construction.
//   * timestamps are unsigned 64-bit; AVX2 only has signed 64-bit compares,
//     so both sides are biased by 2^63 first (the usual sign-flip trick).
//   * value-range filtering uses ordered compares: NaN never matches, same
//     as ValueRange::Contains.

#include "src/core/kernels/kernels.h"

#if defined(__x86_64__) && defined(__AVX2__)

#include <immintrin.h>

#include <cstring>

#include "src/core/kernels/kernels_internal.h"

namespace loom {
namespace {

// Above this many edges the linear vectorized pass loses to binary search.
constexpr size_t kMaxLinearEdges = 32;

size_t DecodeRecordsAvx2(const uint8_t* buf, size_t len, uint64_t base_addr,
                         size_t chunk_size, DecodedBatch* out) {
  // The offset walk is serial and data-dependent (see kernels_internal.h),
  // and it already has each header in cache when it visits it — a measured
  // comparison put a deferred 4-wide timestamp gather 20%+ behind the
  // single-pass walk (vgatherqpd costs more than the inline 8-byte load it
  // replaces). The vector win on this path comes from the downstream
  // classify/filter kernels, so decode shares the scalar walk.
  return kernels_internal::DecodeWalk<true>(buf, len, base_addr, chunk_size, out);
}

void ClassifyBinsAvx2(const double* values, size_t n, const double* edges,
                      size_t num_edges, uint32_t* bins) {
  if (num_edges > kMaxLinearEdges) {
    ScalarKernels()->classify_bins(values, n, edges, num_edges, bins);
    return;
  }
  const __m256i overflow = _mm256_set1_epi64x(static_cast<long long>(num_edges));
  const __m256i pack_idx = _mm256_setr_epi32(0, 2, 4, 6, 0, 0, 0, 0);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d v = _mm256_loadu_pd(values + i);
    __m256i cnt = _mm256_setzero_si256();
    for (size_t j = 0; j < num_edges; ++j) {
      const __m256d le = _mm256_cmp_pd(_mm256_set1_pd(edges[j]), v, _CMP_LE_OQ);
      cnt = _mm256_sub_epi64(cnt, _mm256_castpd_si256(le));  // true lane = -1
    }
    const __m256d unord = _mm256_cmp_pd(v, v, _CMP_UNORD_Q);
    cnt = _mm256_blendv_epi8(cnt, overflow, _mm256_castpd_si256(unord));
    const __m256i packed = _mm256_permutevar8x32_epi32(cnt, pack_idx);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(bins + i),
                     _mm256_castsi256_si128(packed));
  }
  if (i < n) {
    ScalarKernels()->classify_bins(values + i, n - i, edges, num_edges, bins + i);
  }
}

void FilterSourceTimeAvx2(const uint32_t* source_ids, const uint64_t* timestamps,
                          size_t n, uint32_t source, uint64_t start, uint64_t end,
                          uint64_t* mask) {
  std::memset(mask, 0, MaskWords(n) * sizeof(uint64_t));
  const __m128i vsource = _mm_set1_epi32(static_cast<int>(source));
  const __m256i bias = _mm256_set1_epi64x(static_cast<long long>(0x8000000000000000ULL));
  const __m256i xstart =
      _mm256_xor_si256(_mm256_set1_epi64x(static_cast<long long>(start)), bias);
  const __m256i xend =
      _mm256_xor_si256(_mm256_set1_epi64x(static_cast<long long>(end)), bias);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m128i sid =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(source_ids + i));
    const int sid_bits = _mm_movemask_ps(_mm_castsi128_ps(_mm_cmpeq_epi32(sid, vsource)));
    const __m256i ts =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(timestamps + i));
    const __m256i xts = _mm256_xor_si256(ts, bias);
    const __m256i outside = _mm256_or_si256(_mm256_cmpgt_epi64(xstart, xts),
                                            _mm256_cmpgt_epi64(xts, xend));
    const int bad_bits = _mm256_movemask_pd(_mm256_castsi256_pd(outside));
    const int bits = sid_bits & ~bad_bits & 0xF;
    mask[i / 64] |= static_cast<uint64_t>(bits) << (i % 64);
  }
  for (; i < n; ++i) {
    if (source_ids[i] == source && timestamps[i] >= start && timestamps[i] <= end) {
      mask[i / 64] |= uint64_t{1} << (i % 64);
    }
  }
}

void FilterValueRangeAvx2(const double* values, size_t n, double lo, double hi,
                          uint64_t* mask) {
  std::memset(mask, 0, MaskWords(n) * sizeof(uint64_t));
  const __m256d vlo = _mm256_set1_pd(lo);
  const __m256d vhi = _mm256_set1_pd(hi);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d v = _mm256_loadu_pd(values + i);
    const __m256d in = _mm256_and_pd(_mm256_cmp_pd(v, vlo, _CMP_GE_OQ),
                                     _mm256_cmp_pd(v, vhi, _CMP_LE_OQ));
    const int bits = _mm256_movemask_pd(in);
    mask[i / 64] |= static_cast<uint64_t>(bits) << (i % 64);
  }
  for (; i < n; ++i) {
    if (values[i] >= lo && values[i] <= hi) {
      mask[i / 64] |= uint64_t{1} << (i % 64);
    }
  }
}

constexpr KernelOps kAvx2Ops = {
    "avx2",          DecodeRecordsAvx2,    ClassifyBinsAvx2,
    FilterSourceTimeAvx2, FilterValueRangeAvx2,
};

}  // namespace

const KernelOps* Avx2Kernels() {
  return CpuSupportsAvx2() ? &kAvx2Ops : nullptr;
}

}  // namespace loom

#else  // !(defined(__x86_64__) && defined(__AVX2__))

namespace loom {

const KernelOps* Avx2Kernels() { return nullptr; }

}  // namespace loom

#endif
