// NEON kernels (aarch64 Advanced SIMD). 128-bit lanes: 2 doubles / 2 u64 per
// vector. Unlike AVX2 there are native unsigned 64-bit compares, so the
// timestamp filter needs no sign-flip bias. Bit-exactness mirrors the
// comments in kernels_avx2.cc: ordered float compares leave NaN unmatched,
// and classify blends NaN lanes to the overflow bin afterwards.

#include "src/core/kernels/kernels.h"

#if defined(__ARM_NEON) || defined(__ARM_NEON__)

#include <arm_neon.h>

#include <cstring>

#include "src/core/kernels/kernels_internal.h"

namespace loom {
namespace {

constexpr size_t kMaxLinearEdges = 32;

size_t DecodeRecordsNeon(const uint8_t* buf, size_t len, uint64_t base_addr,
                         size_t chunk_size, DecodedBatch* out) {
  // 2-wide gathers do not pay for themselves; the serial walk already
  // extracts every field in one pass.
  return kernels_internal::DecodeWalk<true>(buf, len, base_addr, chunk_size, out);
}

void ClassifyBinsNeon(const double* values, size_t n, const double* edges,
                      size_t num_edges, uint32_t* bins) {
  if (num_edges > kMaxLinearEdges) {
    ScalarKernels()->classify_bins(values, n, edges, num_edges, bins);
    return;
  }
  const uint64x2_t overflow = vdupq_n_u64(static_cast<uint64_t>(num_edges));
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const float64x2_t v = vld1q_f64(values + i);
    uint64x2_t cnt = vdupq_n_u64(0);
    for (size_t j = 0; j < num_edges; ++j) {
      // edge <= value: all-ones lane on true, zero on false or NaN.
      cnt = vsubq_u64(cnt, vcleq_f64(vdupq_n_f64(edges[j]), v));
    }
    const uint64x2_t ordered = vceqq_f64(v, v);  // zero lane on NaN
    cnt = vbslq_u64(ordered, cnt, overflow);
    bins[i] = static_cast<uint32_t>(vgetq_lane_u64(cnt, 0));
    bins[i + 1] = static_cast<uint32_t>(vgetq_lane_u64(cnt, 1));
  }
  if (i < n) {
    ScalarKernels()->classify_bins(values + i, n - i, edges, num_edges, bins + i);
  }
}

void FilterSourceTimeNeon(const uint32_t* source_ids, const uint64_t* timestamps,
                          size_t n, uint32_t source, uint64_t start, uint64_t end,
                          uint64_t* mask) {
  std::memset(mask, 0, MaskWords(n) * sizeof(uint64_t));
  const uint64x2_t vstart = vdupq_n_u64(start);
  const uint64x2_t vend = vdupq_n_u64(end);
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const uint64x2_t ts = vld1q_u64(timestamps + i);
    const uint64x2_t in_time = vandq_u64(vcgeq_u64(ts, vstart), vcleq_u64(ts, vend));
    const uint64_t b0 = vgetq_lane_u64(in_time, 0) & (source_ids[i] == source ? 1u : 0u);
    const uint64_t b1 = vgetq_lane_u64(in_time, 1) & (source_ids[i + 1] == source ? 1u : 0u);
    mask[i / 64] |= (b0 | (b1 << 1)) << (i % 64);
  }
  for (; i < n; ++i) {
    if (source_ids[i] == source && timestamps[i] >= start && timestamps[i] <= end) {
      mask[i / 64] |= uint64_t{1} << (i % 64);
    }
  }
}

void FilterValueRangeNeon(const double* values, size_t n, double lo, double hi,
                          uint64_t* mask) {
  std::memset(mask, 0, MaskWords(n) * sizeof(uint64_t));
  const float64x2_t vlo = vdupq_n_f64(lo);
  const float64x2_t vhi = vdupq_n_f64(hi);
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const float64x2_t v = vld1q_f64(values + i);
    const uint64x2_t in = vandq_u64(vcgeq_f64(v, vlo), vcleq_f64(v, vhi));
    const uint64_t b0 = vgetq_lane_u64(in, 0) & 1u;
    const uint64_t b1 = vgetq_lane_u64(in, 1) & 1u;
    mask[i / 64] |= (b0 | (b1 << 1)) << (i % 64);
  }
  for (; i < n; ++i) {
    if (values[i] >= lo && values[i] <= hi) {
      mask[i / 64] |= uint64_t{1} << (i % 64);
    }
  }
}

constexpr KernelOps kNeonOps = {
    "neon",          DecodeRecordsNeon,    ClassifyBinsNeon,
    FilterSourceTimeNeon, FilterValueRangeNeon,
};

}  // namespace

const KernelOps* NeonKernels() {
  return CpuSupportsNeon() ? &kNeonOps : nullptr;
}

}  // namespace loom

#else  // !__ARM_NEON

namespace loom {

const KernelOps* NeonKernels() { return nullptr; }

}  // namespace loom

#endif
