// Runtime-dispatched vectorized kernels for the per-chunk query hot path.
//
// PR 3 made query fan-out chunk-granular; the per-chunk pipeline
// (load -> decode -> filter -> classify -> scan) is now the dominant query
// cost. This layer lifts its three inner loops out of src/core/loom.cc into
// batch kernels with AVX2 and NEON implementations next to a bit-exact
// scalar reference:
//
//   decode_records      record-header decode over a sealed chunk span
//                       (record_format.h framing, 0xFF padding skip)
//   classify_bins       histogram bin classification (HistogramSpec::BinOf)
//   filter_source_time  source-id + arrival-timestamp predicate -> bitmask
//   filter_value_range  inclusive value-range predicate -> bitmask
//
// Dispatch contract (see DESIGN.md "SIMD kernels"):
//   * One KernelOps table is selected per engine at Loom::Open and never
//     changes; SelectKernels never returns null (unavailable modes fall back
//     to scalar).
//   * Every implementation is bit-exact against the scalar reference: same
//     bins (NaN included), same mask bits, same decoded fields, for any
//     input. The fuzz suite (tests/kernels_test.cc) and the golden
//     serial-vs-parallel suite enforce this.
//   * No alignment requirements: kernels use unaligned loads and never read
//     past the end of an input array (tails run through a scalar epilogue).
//
// The record-offset walk inside decode_records is inherently serial (the
// next header position depends on the previous record's payload length);
// vector implementations accelerate the field extraction over the discovered
// offsets, not the walk itself.

#ifndef SRC_CORE_KERNELS_KERNELS_H_
#define SRC_CORE_KERNELS_KERNELS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/common/cpu_features.h"

namespace loom {

// Decoded record headers of one chunk span, structure-of-arrays so the
// filter/classify kernels stream over dense vectors. Reused across chunks
// (Clear keeps capacity).
struct DecodedBatch {
  std::vector<uint64_t> addrs;         // absolute record-log address
  std::vector<uint32_t> source_ids;
  std::vector<uint32_t> payload_lens;  // payload bytes (header excluded)
  std::vector<uint64_t> timestamps;    // arrival TimestampNanos

  size_t size() const { return addrs.size(); }

  void Clear() {
    addrs.clear();
    source_ids.clear();
    payload_lens.clear();
    timestamps.clear();
  }
};

// Number of 64-bit words a record bitmask for `n` records needs.
inline constexpr size_t MaskWords(size_t n) { return (n + 63) / 64; }

// One implementation of the kernel set. All function pointers are non-null.
struct KernelOps {
  // "scalar" | "avx2" | "neon" — for traces, bench JSON, and tests.
  const char* name;

  // Decodes record headers from `buf` (a copy of record-log bytes
  // [base_addr, base_addr + len)), appending to *out. Honors the chunk
  // framing: a 0xFF-padded region (source_id kPadSourceId) or a sub-header
  // tail skips to the next chunk_size boundary (boundaries are positions in
  // absolute addresses, not buffer offsets). Stops before a record whose
  // header or payload would extend past `len`. Returns the buffer offset
  // where decoding stopped.
  size_t (*decode_records)(const uint8_t* buf, size_t len, uint64_t base_addr,
                           size_t chunk_size, DecodedBatch* out);

  // bins[i] = the HistogramSpec bin of values[i] given `edges` (strictly
  // increasing, num_edges >= 2): count of edges <= value, except NaN which
  // lands in the overflow bin (num_edges), matching HistogramSpec::BinOf.
  void (*classify_bins)(const double* values, size_t n, const double* edges,
                        size_t num_edges, uint32_t* bins);

  // mask bit i = source_ids[i] == source && start <= timestamps[i] <= end
  // (unsigned 64-bit compares). Writes MaskWords(n) words; tail bits zero.
  void (*filter_source_time)(const uint32_t* source_ids, const uint64_t* timestamps,
                             size_t n, uint32_t source, uint64_t start, uint64_t end,
                             uint64_t* mask);

  // mask bit i = lo <= values[i] <= hi (IEEE ordered compares: NaN never
  // matches, mirroring ValueRange::Contains). Writes MaskWords(n) words;
  // tail bits zero.
  void (*filter_value_range)(const double* values, size_t n, double lo, double hi,
                             uint64_t* mask);
};

// The bit-exact reference. Always available.
const KernelOps* ScalarKernels();

// Vector implementations; null when the build target or executing CPU cannot
// run them.
const KernelOps* Avx2Kernels();
const KernelOps* NeonKernels();

// Resolves `mode` to an executable implementation: kAuto picks the best the
// CPU supports; a forced mode that is unavailable falls back to scalar.
// Never null. (The LOOM_SIMD env override is applied by the caller — see
// SimdModeFromEnv — so an engine's explicit LoomOptions::simd_mode is not
// silently overridden.)
const KernelOps* SelectKernels(SimdMode mode);

}  // namespace loom

#endif  // SRC_CORE_KERNELS_KERNELS_H_
