// Shared pieces of the kernel implementations. Internal to src/core/kernels.

#ifndef SRC_CORE_KERNELS_KERNELS_INTERNAL_H_
#define SRC_CORE_KERNELS_KERNELS_INTERNAL_H_

#include <cstddef>
#include <cstdint>

#include "src/common/codec.h"
#include "src/core/kernels/kernels.h"
#include "src/core/record_format.h"

namespace loom {
namespace kernels_internal {

// The record-offset walk every decode implementation shares. The walk is
// data-dependent (the next header position needs the previous payload
// length), so it is serial by construction; `FillTimestamps` lets a vector
// implementation defer the timestamp extraction to a gathered second pass
// over the discovered offsets.
template <bool FillTimestamps>
inline size_t DecodeWalk(const uint8_t* buf, size_t len, uint64_t base_addr,
                         size_t chunk_size, DecodedBatch* out) {
  size_t off = 0;
  for (;;) {
    const uint64_t addr = base_addr + off;
    const uint64_t chunk_rem = chunk_size - (addr % chunk_size);
    if (chunk_rem < kRecordHeaderSize) {
      // A record needs a full header and never spans chunks, so a
      // sub-header chunk tail is always padding. This check runs before the
      // span-end check: a multi-chunk span must report the pad tail as
      // consumed, not as a truncated record.
      if (off + chunk_rem > len) {
        return len;  // the span ends inside the pad: all of it is consumed
      }
      off += static_cast<size_t>(chunk_rem);
      continue;
    }
    if (off + kRecordHeaderSize > len) {
      return off;  // no room for a header before the span end
    }
    const uint32_t sid = LoadU32(buf + off);
    if (sid == kPadSourceId) {
      if (off + chunk_rem > len) {
        return len;  // the span ends inside the pad: all of it is consumed
      }
      off += static_cast<size_t>(chunk_rem);  // padding: skip to the boundary
      continue;
    }
    const uint32_t plen = LoadU32(buf + off + 4);
    if (off + kRecordHeaderSize + plen > len) {
      return off;  // record extends past the span (snapshot tail)
    }
    out->addrs.push_back(addr);
    out->source_ids.push_back(sid);
    out->payload_lens.push_back(plen);
    if constexpr (FillTimestamps) {
      out->timestamps.push_back(LoadU64(buf + off + 8));
    }
    off += kRecordHeaderSize + plen;
  }
}

}  // namespace kernels_internal
}  // namespace loom

#endif  // SRC_CORE_KERNELS_KERNELS_INTERNAL_H_
