// Bit-exact scalar reference kernels. Every vector implementation is held to
// this behavior by the fuzz suite; keep this file boring and obviously
// correct.

#include <algorithm>
#include <cstring>

#include "src/core/kernels/kernels.h"
#include "src/core/kernels/kernels_internal.h"

namespace loom {
namespace {

size_t DecodeRecordsScalar(const uint8_t* buf, size_t len, uint64_t base_addr,
                           size_t chunk_size, DecodedBatch* out) {
  return kernels_internal::DecodeWalk<true>(buf, len, base_addr, chunk_size, out);
}

void ClassifyBinsScalar(const double* values, size_t n, const double* edges,
                        size_t num_edges, uint32_t* bins) {
  // Mirrors HistogramSpec::BinOf exactly: underflow 0, overflow num_edges,
  // otherwise the first edge greater than the value. NaN fails both ordered
  // comparisons and upper_bound never advances past it, so it classifies
  // into the overflow bin — vector implementations must special-case that.
  const double* end = edges + num_edges;
  for (size_t i = 0; i < n; ++i) {
    const double v = values[i];
    if (v < edges[0]) {
      bins[i] = 0;
    } else if (v >= edges[num_edges - 1]) {
      bins[i] = static_cast<uint32_t>(num_edges);
    } else {
      bins[i] = static_cast<uint32_t>(std::upper_bound(edges, end, v) - edges);
    }
  }
}

void FilterSourceTimeScalar(const uint32_t* source_ids, const uint64_t* timestamps,
                            size_t n, uint32_t source, uint64_t start, uint64_t end,
                            uint64_t* mask) {
  std::memset(mask, 0, MaskWords(n) * sizeof(uint64_t));
  for (size_t i = 0; i < n; ++i) {
    if (source_ids[i] == source && timestamps[i] >= start && timestamps[i] <= end) {
      mask[i / 64] |= uint64_t{1} << (i % 64);
    }
  }
}

void FilterValueRangeScalar(const double* values, size_t n, double lo, double hi,
                            uint64_t* mask) {
  std::memset(mask, 0, MaskWords(n) * sizeof(uint64_t));
  for (size_t i = 0; i < n; ++i) {
    if (values[i] >= lo && values[i] <= hi) {
      mask[i / 64] |= uint64_t{1} << (i % 64);
    }
  }
}

constexpr KernelOps kScalarOps = {
    "scalar",        DecodeRecordsScalar,    ClassifyBinsScalar,
    FilterSourceTimeScalar, FilterValueRangeScalar,
};

}  // namespace

const KernelOps* ScalarKernels() { return &kScalarOps; }

}  // namespace loom
