#include "src/core/kernels/kernels.h"

namespace loom {

const KernelOps* SelectKernels(SimdMode mode) {
  switch (mode) {
    case SimdMode::kAuto: {
      // Best available on this CPU. NEON and AVX2 never coexist, so the
      // order is cosmetic.
      if (const KernelOps* ops = Avx2Kernels()) {
        return ops;
      }
      if (const KernelOps* ops = NeonKernels()) {
        return ops;
      }
      return ScalarKernels();
    }
    case SimdMode::kScalar:
      return ScalarKernels();
    case SimdMode::kAvx2: {
      const KernelOps* ops = Avx2Kernels();
      return ops != nullptr ? ops : ScalarKernels();
    }
    case SimdMode::kNeon: {
      const KernelOps* ops = NeonKernels();
      return ops != nullptr ? ops : ScalarKernels();
    }
  }
  return ScalarKernels();
}

}  // namespace loom
