#include "src/core/query_thread_pool.h"

#include <algorithm>

namespace loom {

namespace {
thread_local bool t_on_worker_thread = false;
}  // namespace

// Shared state of one Run/RunOrdered invocation. Workers and the caller claim
// morsels via `next`; completion is tracked per morsel (`done`) so the caller
// can consume strictly in order while production runs ahead, bounded by
// `window`. The caller marks the run `finished` before returning; a worker
// whose ticket outlived the run sees that and walks away, and the caller
// waits for `active` to drain so no worker ever touches freed caller state.
struct QueryThreadPool::RunState {
  size_t n = 0;
  size_t window = 0;  // 0 = unbounded
  const std::function<void(size_t)>* fn = nullptr;

  std::atomic<size_t> next{0};      // first unclaimed morsel
  std::atomic<size_t> consumed{0};  // morsels consumed by the caller
  std::atomic<bool> cancelled{false};
  std::unique_ptr<std::atomic<uint8_t>[]> done;
  std::atomic<size_t> workers_used{0};

  std::mutex mu;
  std::condition_variable cv;
  bool finished = false;  // guarded by mu
  size_t active = 0;      // threads inside WorkBody, guarded by mu

  bool WindowBlocked(size_t i) const {
    return window != 0 && i >= consumed.load(std::memory_order_acquire) + window;
  }
};

QueryThreadPool::QueryThreadPool(size_t num_threads) : num_threads_(num_threads) {}

QueryThreadPool::~QueryThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : threads_) {
    t.join();
  }
}

bool QueryThreadPool::started() const {
  std::lock_guard<std::mutex> lock(mu_);
  return started_;
}

size_t QueryThreadPool::QueueDepthApprox() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

bool QueryThreadPool::OnWorkerThread() { return t_on_worker_thread; }

void QueryThreadPool::EnsureStarted() {
  std::lock_guard<std::mutex> lock(mu_);
  if (started_ || num_threads_ == 0) {
    return;
  }
  started_ = true;
  threads_.reserve(num_threads_);
  for (size_t i = 0; i < num_threads_; ++i) {
    threads_.emplace_back([this] { WorkerMain(); });
  }
}

void QueryThreadPool::WorkerMain() {
  t_on_worker_thread = true;
  for (;;) {
    std::shared_ptr<RunState> state;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [&] { return stopping_ || !queue_.empty(); });
      if (stopping_) {
        return;
      }
      state = std::move(queue_.front());
      queue_.pop_front();
    }
    {
      std::lock_guard<std::mutex> lock(state->mu);
      if (state->finished) {
        continue;  // late ticket: the run already completed
      }
      ++state->active;
    }
    const bool worked = WorkBody(*state);
    if (worked) {
      state->workers_used.fetch_add(1, std::memory_order_relaxed);
    }
    {
      std::lock_guard<std::mutex> lock(state->mu);
      --state->active;
    }
    state->cv.notify_all();
  }
}

bool QueryThreadPool::WorkBody(RunState& state) {
  bool worked = false;
  for (;;) {
    if (state.cancelled.load(std::memory_order_relaxed)) {
      break;
    }
    size_t i = state.next.load(std::memory_order_relaxed);
    if (i >= state.n) {
      break;
    }
    if (state.WindowBlocked(i)) {
      // Production ran `window` morsels ahead of the consumer; park until
      // consumption advances (or the run ends).
      std::unique_lock<std::mutex> lock(state.mu);
      state.cv.wait(lock, [&] {
        return state.finished || state.cancelled.load(std::memory_order_relaxed) ||
               state.next.load(std::memory_order_relaxed) >= state.n ||
               !state.WindowBlocked(state.next.load(std::memory_order_relaxed));
      });
      continue;
    }
    i = state.next.fetch_add(1, std::memory_order_relaxed);
    if (i >= state.n) {
      break;
    }
    (*state.fn)(i);
    worked = true;
    state.done[i].store(1, std::memory_order_release);
    // Lock/unlock before notifying so a consumer between its predicate check
    // and the wait cannot miss this completion.
    { std::lock_guard<std::mutex> lock(state.mu); }
    state.cv.notify_all();
  }
  return worked;
}

QueryThreadPool::RunStats QueryThreadPool::Run(size_t n, const std::function<void(size_t)>& fn) {
  return RunImpl(n, 0, fn, nullptr);
}

QueryThreadPool::RunStats QueryThreadPool::RunOrdered(size_t n, size_t window,
                                                      const std::function<void(size_t)>& fn,
                                                      const std::function<bool(size_t)>& consume) {
  return RunImpl(n, window, fn, &consume);
}

QueryThreadPool::RunStats QueryThreadPool::RunImpl(size_t n, size_t window,
                                                   const std::function<void(size_t)>& fn,
                                                   const std::function<bool(size_t)>* consume) {
  RunStats stats;
  stats.morsels = n;
  if (n == 0) {
    return stats;
  }
  auto state = std::make_shared<RunState>();
  state->n = n;
  state->window = window;
  state->fn = &fn;
  state->done = std::make_unique<std::atomic<uint8_t>[]>(n);
  for (size_t i = 0; i < n; ++i) {
    state->done[i].store(0, std::memory_order_relaxed);
  }

  EnsureStarted();
  const size_t tickets = std::min(num_threads_, n > 1 ? n - 1 : 0);
  if (tickets > 0) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      for (size_t t = 0; t < tickets; ++t) {
        queue_.push_back(state);
      }
    }
    cv_.notify_all();
  }

  // The caller produces alongside the workers and consumes in order. While
  // morsel i is unfinished the caller either claims more work or — when
  // nothing is claimable — waits; a wait can only happen once morsel i has
  // been claimed by some thread, so it always terminates.
  bool caller_worked = false;
  for (size_t i = 0; i < n && !state->cancelled.load(std::memory_order_relaxed); ++i) {
    while (!state->done[i].load(std::memory_order_acquire)) {
      size_t j = state->next.load(std::memory_order_relaxed);
      if (j < n && !state->WindowBlocked(j)) {
        j = state->next.fetch_add(1, std::memory_order_relaxed);
        if (j < n) {
          fn(j);
          caller_worked = true;
          state->done[j].store(1, std::memory_order_release);
          state->cv.notify_all();
          continue;
        }
      }
      std::unique_lock<std::mutex> lock(state->mu);
      state->cv.wait(lock, [&] { return state->done[i].load(std::memory_order_acquire) != 0; });
    }
    if (consume != nullptr && !(*consume)(i)) {
      state->cancelled.store(true, std::memory_order_relaxed);
      stats.cancelled = true;
    }
    state->consumed.store(i + 1, std::memory_order_release);
    if (window != 0 || stats.cancelled) {
      // Wake window-parked producers (or, on cancel, everyone).
      { std::lock_guard<std::mutex> lock(state->mu); }
      state->cv.notify_all();
    }
  }

  // Drop unclaimed tickets for this run, then wait for active workers to
  // leave before the caller-owned fn/consume state goes out of scope.
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto it = queue_.begin(); it != queue_.end();) {
      it = (*it == state) ? queue_.erase(it) : std::next(it);
    }
  }
  {
    std::unique_lock<std::mutex> lock(state->mu);
    state->finished = true;
    state->cv.notify_all();
    state->cv.wait(lock, [&] { return state->active == 0; });
  }
  if (caller_worked) {
    state->workers_used.fetch_add(1, std::memory_order_relaxed);
  }
  stats.workers_used = state->workers_used.load(std::memory_order_relaxed);
  return stats;
}

}  // namespace loom
