// Loom: efficient capture and querying of high-frequency telemetry.
//
// This is the public API of the engine (Figure 9 of the paper). A monitoring
// daemon embeds a `Loom` instance, defines sources and histogram indexes,
// pushes records on a single ingest thread, and serves queries from any
// number of reader threads concurrently with ingest.
//
// Threading contract:
//   * Schema operators (DefineSource/CloseSource/DefineIndex/CloseIndex) and
//     data ingest operators (Push/Sync) must be called from one thread — the
//     ingest thread.
//   * Query operators (RawScan/IndexedScan/IndexedAggregate) may be called
//     from any thread, concurrently with ingest. Queries never block ingest
//     (§4.4): they read lock-free snapshots and fall back to persistent
//     storage when the writer recycles an in-memory block mid-copy.
//   * Externally each query still behaves single-threaded: callbacks run on
//     the calling thread, in the same order as serial execution, against one
//     snapshot. Internally, when LoomOptions::query_threads > 0, operators
//     fan their candidate chunks out in morsels across a shared lazily-
//     started QueryThreadPool and merge per-worker partials in candidate
//     order, so results are byte-identical to serial execution. query_threads
//     = 0 (the default) keeps the fully serial executor with its constant
//     maximum memory footprint (§3); parallel scans buffer at most a bounded
//     window of morsel results. Index functions must be thread-safe (pure
//     functions of the payload): with parallelism enabled they are evaluated
//     concurrently from pool workers.
//
// Consistency (§4.5): a query observes exactly the records published before
// its snapshot was created. Durability is bounded by the in-memory blocks:
// data not yet flushed is lost if the process dies.

#ifndef SRC_CORE_LOOM_H_
#define SRC_CORE_LOOM_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "src/common/clock.h"
#include "src/common/cpu_features.h"
#include "src/common/metrics.h"
#include "src/common/status.h"
#include "src/core/kernels/kernels.h"
#include "src/core/query_thread_pool.h"
#include "src/core/query_trace.h"
#include "src/core/record_format.h"
#include "src/hybridlog/hybrid_log.h"
#include "src/hybridlog/prefetch_ring.h"
#include "src/index/chunk_summary.h"
#include "src/index/histogram.h"
#include "src/index/summary_cache.h"
#include "src/standing/standing_query.h"
#include "src/index/timestamp_index.h"
#include "src/tier/catalog.h"

namespace loom {

struct LoomOptions {
  // Directory holding the three log files (record.log, chunk.idx, ts.idx).
  std::string dir;

  // Record log chunk size: the unit of indexing (§4.2). Paper default 64 KiB.
  size_t chunk_size = 64 << 10;

  // In-memory block sizes per hybrid log. The paper uses 64 MiB blocks; the
  // defaults here are sized for laptop-scale runs. record_block_size is
  // rounded up to a multiple of chunk_size, ts_block_size to a multiple of
  // the 32-byte timestamp entry.
  size_t record_block_size = 4 << 20;
  size_t chunk_index_block_size = 1 << 20;
  size_t ts_index_block_size = 1 << 20;

  // A periodic timestamp index entry is written every `ts_marker_period`
  // records per source.
  uint32_t ts_marker_period = 64;

  // Record-log retention: keep at most this many bytes of raw records on
  // disk; older chunks are dropped and their disk space reclaimed (hole
  // punching). 0 retains everything. Queries reaching past the retention
  // floor return the retained suffix of the data. Index logs are small and
  // always retained in full.
  uint64_t record_retain_bytes = 0;

  // --- Tiered storage (cold archive tier) ---------------------------------

  // When set, retention demotes instead of deletes: a background tiering
  // service archives chunks below the desired retention floor into
  // crash-safe LOOMEXP1 archives (with per-block zone-map footers) under
  // this directory, and queries transparently federate over both tiers.
  // Requires enable_chunk_index (the zone maps are chunk summaries). Empty
  // (the default) keeps the lossy drop-on-retention behavior.
  std::string archive_dir;

  // Demotion cadence of the background tiering thread. 0 (the default)
  // disables the thread: demotion then runs only through explicit
  // DemoteNow() calls — the deterministic mode tests and replay tools use.
  uint64_t demote_interval_ms = 0;

  // At most this many chunks move into one archive per demotion pass.
  size_t demote_batch_chunks = 64;

  // Ablation switches (§6.4, Figure 16). Production leaves both on.
  bool enable_chunk_index = true;
  bool enable_timestamp_index = true;

  // Decoded chunk-summary cache byte budget (0 disables). Finalized summaries
  // are immutable and addressed by stable chunk-log offsets, so repeated
  // queries over overlapping ranges skip the per-summary log reads + decode.
  // Only query threads touch the cache (try-lock shards); ingest never does.
  size_t summary_cache_bytes = 8 << 20;
  // LRU shard count for the summary cache (rounded up to a power of two).
  size_t summary_cache_shards = 8;

  // Worker threads for morsel-driven parallel query execution (0 = every
  // query runs serially on its calling thread, today's default). The pool is
  // shared across queries and starts lazily on the first parallel query.
  // Validate() clamps values above 4x the hardware concurrency. Results are
  // byte-identical to serial execution; index functions must be thread-safe.
  size_t query_threads = 0;

  // Kernel dispatch for the per-chunk decode/classify/filter hot loops (see
  // src/core/kernels/kernels.h). kAuto resolves the LOOM_SIMD environment
  // variable (scalar|avx2|neon|auto) first, then autodetects the widest set
  // the CPU supports. Every set is bit-exact with the scalar reference, so
  // this knob never changes results — only throughput. Forcing an
  // unavailable set silently degrades to scalar.
  SimdMode simd_mode = SimdMode::kAuto;

  // Read-ahead depth of the chunk prefetch ring: indexed queries hand their
  // planned candidate chunk list to a background reader that stays up to
  // `prefetch_depth` chunks ahead of decode, overlapping record-log I/O with
  // kernel compute. Memory stays bounded at prefetch_depth chunks per query.
  // 0 disables the ring (queries read through their scan-local caches only).
  size_t prefetch_depth = 4;

  // --- Ingest pipeline (the write-path mirror of the query knobs above) ---

  // Pipelined ingest: chunk finalization (summary materialization + encode +
  // chunk-log append + ts-index appends) moves off the record hot path onto
  // sealing workers with bounded queues. The §5.4 publish-ordering contract
  // is preserved — published_indexed_tail_ never advances past an
  // unfinalized chunk, so readers simply see sealing chunks as unindexed
  // tail (scanned raw) until finalize lands; drained results are
  // bit-identical to the inline path. On by default; the LOOM_INGEST
  // environment variable (inline|pipelined) overrides this at Open, so test
  // matrices and replay tools that rely on finalization being synchronous
  // between individual pushes can force the inline path without code
  // changes. Sync() drains the pipeline.
  bool pipelined_ingest = true;

  // Number of sealing workers (pipelined mode). Each sealed chunk's summary
  // materialization and frame encode — the expensive part of finalization —
  // runs on one of `seal_shards` workers in parallel; the serial tail
  // (chunk-log append, ts-index append, watermark publish) is applied in
  // global seal order via a ticket, so on-disk bytes and query results are
  // bit-identical for any shard count. Chunk seals are distributed
  // round-robin; ts record markers are routed by source hash so each
  // source's marker chain stays on one worker. Validate() clamps to [1, 32].
  size_t seal_shards = 1;

  // Durability policy of the record log's flusher (see
  // src/hybridlog/hybrid_log.h): kNone syncs only at close, kGroup batches
  // fdatasync over many flushed blocks (bounding data-at-risk to the group
  // window below), kEveryBlock syncs each flush. Index logs always use
  // kNone — they are reconstructible from the record log.
  SyncPolicy sync_policy = SyncPolicy::kNone;

  // Group-commit window (sync_policy = kGroup): a sync is issued when this
  // many bytes have been flushed unsynced, or this much time has passed
  // since the oldest unsynced byte, whichever comes first.
  uint64_t group_commit_bytes = 1 << 20;
  uint64_t group_commit_interval_ms = 50;

  // Bound on sealed-but-unfinalized chunks: ingest stalls (counted in
  // loom_ingest_finalize_stall_seconds_total) rather than letting the
  // indexed watermark fall arbitrarily behind. Minimum 1.
  size_t finalize_inflight_chunks = 4;

  // Record-log flusher budget: up to this many queued full blocks are
  // coalesced into one vectored write per flush submission. 1 keeps the
  // historical block-at-a-time flusher; Open sizes the record log's
  // in-memory ring to flush_inflight_blocks + 1 slots (minimum 2) so the
  // writer keeps filling while a batch is in flight.
  size_t flush_inflight_blocks = 1;

  // Flush submission backend (see src/common/io_backend.h): kAuto resolves
  // the LOOM_IO env override (sync|io_uring|auto) and then probes the kernel
  // for io_uring, mirroring simd_mode/LOOM_SIMD. The synchronous pwritev
  // path is the universal fallback; this knob never changes results.
  IoBackend io_backend = IoBackend::kAuto;

  // Batched summary construction: per-record index values are staged in a
  // small per-index buffer and classified with the vectorized classify_bins
  // kernel in batches of up to this many values (flushed at every chunk seal
  // and index close, so summaries stay bit-identical to the per-record
  // scalar BinOf path). 0 disables staging.
  size_t summary_stage_records = 256;

  // Timestamp source; defaults to a process-wide monotonic clock.
  Clock* clock = nullptr;

  // Metrics land here when set (e.g. the daemon shares one registry across
  // engine, channels, and network front door); otherwise the engine creates
  // and owns a private registry, reachable via metrics().
  MetricsRegistry* metrics = nullptr;

  // Latency histograms need clock reads around each operation; counters are
  // always on (a relaxed atomic add each). Turning this off removes the
  // timer reads for overhead-critical replays; per-record Push additionally
  // samples its timer 1-in-64 so the ingest hot path never pays two clock
  // reads per record.
  bool enable_latency_metrics = true;

  // Validates and canonicalizes the options in place: rejects nonsensical
  // combinations (empty dir, chunk_size too small for a record, a nonzero
  // cache budget with zero shards), clamps query_threads to 4x the hardware
  // concurrency, normalizes a zero-byte cache budget to zero shards, bumps a
  // zero ts_marker_period to 1, and applies the block-size round-ups.
  // Loom::Open calls this on its private copy; call it directly to pre-check
  // configuration (e.g. daemon config parsing).
  Status Validate();
};

// Legacy counter snapshot, now materialized from the metrics registry (the
// registry is the source of truth; see Loom::metrics() for the full picture
// including latency histograms).
struct LoomStats {
  uint64_t records_ingested = 0;
  uint64_t bytes_ingested = 0;  // payload bytes
  uint64_t chunks_finalized = 0;
  uint64_t ts_entries = 0;
  HybridLogStats record_log;
  HybridLogStats chunk_index_log;
  HybridLogStats ts_index_log;
  SummaryCacheStats summary_cache;
};

// Inclusive time range [start, end] in Loom-internal (arrival) timestamps.
struct TimeRange {
  TimestampNanos start = 0;
  TimestampNanos end = 0;

  bool Contains(TimestampNanos ts) const { return ts >= start && ts <= end; }
};

// Inclusive value range [lo, hi].
struct ValueRange {
  double lo = 0.0;
  double hi = 0.0;

  bool Contains(double v) const { return v >= lo && v <= hi; }
};

enum class AggregateMethod {
  kCount,
  kSum,
  kMin,
  kMax,
  kMean,
  kPercentile,  // requires percentile argument in [0, 100]
};

class Loom {
 public:
  // Extracts the indexed value from a record payload; nullopt skips the
  // record (it is still stored and raw-scannable, just not indexed). Must be
  // a thread-safe pure function of the payload: queries evaluate it from
  // multiple pool workers when query_threads > 0.
  using IndexFunc = std::function<std::optional<double>(std::span<const uint8_t>)>;

  // Receives matching records. Return false to stop the scan early.
  using RecordCallback = std::function<bool(const RecordView&)>;

  static Result<std::unique_ptr<Loom>> Open(const LoomOptions& options);
  ~Loom();

  Loom(const Loom&) = delete;
  Loom& operator=(const Loom&) = delete;

  // --- Schema operators (ingest thread) ----------------------------------

  Status DefineSource(uint32_t source_id);
  Status CloseSource(uint32_t source_id);

  // Defines a histogram index over `source_id`. Only records pushed after
  // the definition are indexed (§5.3); earlier records remain raw-scannable
  // and are found by indexed operators via chunk presence entries, at scan
  // cost. Returns the new index id.
  Result<uint32_t> DefineIndex(uint32_t source_id, IndexFunc func, HistogramSpec spec);
  Status CloseIndex(uint32_t index_id);

  // --- Data ingest operators (ingest thread) ------------------------------

  // Appends one record. The payload is opaque bytes; Loom timestamps it with
  // the internal monotonic clock on arrival (§5.2). When `arrival_ts` is
  // non-null it receives the timestamp actually stamped on the record, so
  // callers binning events into windows (TraceSink) use the record's true
  // provenance instead of re-reading the clock after the append.
  Status Push(uint32_t source_id, std::span<const uint8_t> payload,
              TimestampNanos* arrival_ts = nullptr);

  // Appends a batch of records for one source, amortizing the source lookup,
  // the clock read, and the publish fence across the batch. All records in
  // the batch carry the same arrival timestamp. Stops at the first failing
  // record (everything appended before it stays published).
  Status PushBatch(uint32_t source_id, std::span<const std::span<const uint8_t>> payloads);

  // Makes all records pushed so far visible to queriers. (Push already
  // publishes each record; Sync exists for API parity and forces the
  // publication fence.)
  Status Sync(uint32_t source_id);

  // --- Query operators (any thread) ---------------------------------------

  // Every query operator takes an optional `trace` out-parameter; when
  // non-null it receives the per-query execution trace (chunks considered /
  // pruned / scanned, records examined, cache hits, stage timings) — see
  // src/core/query_trace.h.

  // Scans records of `source_id` whose arrival time is in `t_range`, from
  // most to least recent (back-pointer chain order, §4.3).
  Status RawScan(uint32_t source_id, TimeRange t_range, const RecordCallback& cb,
                 QueryTrace* trace = nullptr) const;

  // Scans records of `source_id` in `t_range` whose indexed value (per
  // `index_id`) is in `v_range`, using the chunk index to skip chunks.
  // Records are delivered in log (oldest-first) order.
  Status IndexedScan(uint32_t source_id, uint32_t index_id, TimeRange t_range, ValueRange v_range,
                     const RecordCallback& cb, QueryTrace* trace = nullptr) const;

  // Aggregates the indexed values of `source_id` in `t_range`. Distributive
  // aggregates are served from chunk summaries where chunks are fully inside
  // the range; holistic percentile uses the summary bins as a CDF and scans
  // only chunks contributing to the target bin (§4.3).
  Result<double> IndexedAggregate(uint32_t source_id, uint32_t index_id, TimeRange t_range,
                                  AggregateMethod method, double percentile = 0.0,
                                  QueryTrace* trace = nullptr) const;

  // Like IndexedScan, but also delivers the extracted index value, so
  // callers need not know the index function. Used by composed drill-down
  // queries and the distributed coordinator's two-phase percentile (§8).
  using ValueCallback = std::function<bool(double value, const RecordView& record)>;
  Status IndexedScanValues(uint32_t source_id, uint32_t index_id, TimeRange t_range,
                           ValueRange v_range, const ValueCallback& cb,
                           QueryTrace* trace = nullptr) const;

  // Counts records of `source_id` in `t_range` using the always-maintained
  // per-source presence statistics in chunk summaries — no user-defined
  // index required. Falls back to scanning in ablation modes.
  Result<uint64_t> CountRecords(uint32_t source_id, TimeRange t_range,
                                QueryTrace* trace = nullptr) const;

  // Returns the per-bin record counts of `index_id` over `t_range` (one
  // entry per histogram bin, including the outlier bins). Served from chunk
  // summaries plus partial-chunk scans; this is the "histogram" query class
  // from §3 and the building block for distributed percentile merging (§8).
  Result<std::vector<uint64_t>> IndexedHistogram(uint32_t source_id, uint32_t index_id,
                                                 TimeRange t_range,
                                                 QueryTrace* trace = nullptr) const;

  // --- Tiered storage (any thread) -----------------------------------------

  // Runs one demotion pass synchronously: chunks wholly below both the
  // desired retention floor and the indexed watermark are archived (at most
  // options().demote_batch_chunks of them), the retention barrier advances
  // past the durable archive, and the demoted hot bytes are reclaimed.
  // No-op without archive_dir. Passes are serialized internally, so this is
  // safe concurrently with the background demoter.
  Status DemoteNow();

  // Sealed archives currently served by the query tier.
  size_t ArchiveCount() const;

  // --- Standing queries (any thread) ---------------------------------------

  // Registers a continuous windowed aggregate over a defined index
  // (src/standing/). Evaluation happens on the seal path: each freshly
  // sealed ChunkSummary is folded into the open windows, and every window
  // the watermark passes is emitted with results bit-identical to the
  // one-shot IndexedAggregate/IndexedHistogram over the same range.
  // Requires enable_chunk_index; the index must cover spec.source_id.
  Result<uint64_t> RegisterStandingQuery(const StandingQuerySpec& spec);
  Status UnregisterStandingQuery(uint64_t query_id);

  // Live stream of window results and alert transitions (query_id 0 = all).
  std::shared_ptr<StandingSubscription> SubscribeStanding(uint64_t query_id = 0,
                                                          size_t capacity = 1024);

  // The standing-query engine itself (stats, watermark). Never null.
  StandingQueryEngine* standing() const { return standing_.get(); }

  // --- Introspection -------------------------------------------------------

  // The histogram spec of a defined index (copies; safe from any thread).
  Result<HistogramSpec> IndexSpec(uint32_t index_id) const;

  LoomStats stats() const;
  TimestampNanos Now() const { return clock_->NowNanos(); }
  const LoomOptions& options() const { return options_; }

  // The engine's metrics registry (shared with the owner when
  // LoomOptions.metrics was set). Never null.
  MetricsRegistry* metrics() const { return metrics_; }

 private:
  struct IndexState {
    uint32_t id = 0;
    uint32_t source_id = 0;
    bool open = false;
    IndexFunc func;
    HistogramSpec spec = HistogramSpec::ExactMatch(0);
    size_t builder_slot = 0;
    // Staged summary construction (summary_stage_records > 0): extracted
    // values wait here until a batch classify + builder fold. Ingest thread
    // only; flushed at stage capacity, chunk seal, and index/source close.
    std::vector<double> stage_values;
    std::vector<TimestampNanos> stage_ts;
    uint64_t stage_evaluated = 0;
    bool stage_listed = false;  // member of staged_indexes_
  };

  struct SourceState {
    uint32_t id = 0;
    bool open = false;
    uint64_t record_count = 0;
    // Writer-side chain heads.
    uint64_t last_record_addr = kNullAddr;
    uint64_t last_marker_addr = kNullAddr;
    uint32_t records_since_marker = 0;
    size_t presence_slot = 0;
    // Indexes active on this source (writer side).
    std::vector<IndexState*> indexes;
    // Reader-visible chain head, published after the record log watermark.
    std::atomic<uint64_t> published_last_record{kNullAddr};
  };

  // Reader-side snapshot of an index definition.
  struct IndexSnapshot {
    uint32_t source_id = 0;
    IndexFunc func;
    HistogramSpec spec = HistogramSpec::ExactMatch(0);
  };

  // Point-in-time view used by one query (§4.4 capture order).
  struct Snapshot {
    uint64_t source_tail = kNullAddr;  // chain head for the queried source
    uint64_t indexed_tail = 0;         // record log address below which chunks are summarized
    uint64_t ts_tail = 0;
    uint64_t chunk_tail = 0;
    uint64_t record_tail = 0;
  };

  // `options.metrics` is already resolved (never null) by Open(); when the
  // engine owns the registry, Open passes it in via `owned_metrics` so the
  // hybrid logs could register against it before construction.
  Loom(const LoomOptions& options, std::unique_ptr<MetricsRegistry> owned_metrics,
       std::unique_ptr<HybridLog> record_log, std::unique_ptr<HybridLog> chunk_log,
       std::unique_ptr<HybridLog> ts_log);

  // Write-path internals (ingest thread).
  Status AppendRecord(SourceState& src, std::span<const uint8_t> payload, TimestampNanos now);
  Status FinalizeChunk(TimestampNanos now);
  Status MaybeWriteMarker(SourceState& src, TimestampNanos ts, uint64_t record_addr);
  void PublishAll(SourceState& src);
  // Classifies and folds an index's staged values into the builder (batch
  // kernel path); no-op when the stage is empty.
  void FlushIndexStage(IndexState& idx);
  // Flushes every index with staged data (called before each chunk seal).
  void FlushSummaryStages();

  // --- Ingest pipeline (pipelined_ingest; see DESIGN.md) -------------------
  //
  // In pipelined mode the sealing workers are the *only* writers of the
  // chunk and ts logs (both are single-writer). The ingest thread assigns
  // every seal event a global sequence number and routes it to one of
  // `seal_shards` SPSC queues: chunk seals round-robin by sequence, ts
  // record markers by source hash (each source's marker chain stays on one
  // worker). Workers run the expensive per-event work — summary
  // materialization and frame encode — in parallel, then apply the serial
  // tail (append + publish chunk log, then ts log, then
  // published_indexed_tail_ — the §5.4 order) strictly in sequence order
  // via a ticket: seal_seq_applied_ is the low-water-mark across shards,
  // and its release/acquire hand-off transfers the single-writer log state
  // between workers. Per-shard queues are FIFO in sequence, so the globally
  // smallest unapplied sequence is always at some shard's head: the ticket
  // never deadlocks, and tickets advance even for skipped (post-error)
  // events.
  struct SealEvent {
    enum class Kind : uint8_t { kChunk, kMarker, kStop };
    Kind kind = Kind::kChunk;
    uint64_t seq = 0;          // global apply order (all kinds; not kStop)
    // kChunk: detached builder state; the worker materializes + encodes it.
    ChunkSummaryBuilder::Pending pending;
    uint32_t source_id = 0;    // kMarker
    uint64_t record_addr = 0;  // kMarker
    TimestampNanos ts = 0;     // event timestamp (monotone in queue order)
  };
  struct SealShard {
    std::unique_ptr<SpscQueue<SealEvent>> queue;
    std::thread worker;
  };
  void SealShardMain(size_t shard_idx);
  // Spins until `seq` holds the apply ticket. The acquire pairs with the
  // previous applier's release store, handing over the chunk/ts log state.
  void WaitSealTurn(uint64_t seq);
  Status ApplyChunkSeal(const ChunkSummary& summary, TimestampNanos ts,
                        const std::vector<uint8_t>& buf);
  Status ApplyMarker(const SealEvent& ev, std::unordered_map<uint32_t, uint64_t>& chains);
  // Blocks (counted as finalize stall) while the seal budget or the target
  // shard's queue is full, then stamps the next sequence number and
  // enqueues. Returns the sticky pipeline error, if any.
  Status EnqueueSealEvent(SealEvent&& ev, bool is_chunk);
  // Ingest thread: waits until every queued event has been applied.
  void DrainIngestPipeline();
  // Destructor: drains, stops, and joins the sealing workers.
  void StopIngestPipeline();
  // First error any sealing worker hit (Ok when healthy), annotated with the
  // shard that hit it.
  Status PipelineStatus() const;

  // Query internals. Public query operators are thin wrappers that install a
  // trace (local when the caller passed none), time the call, run the *Impl
  // body, and fold the finished trace into the metrics registry. Internal
  // composition (ablation fallbacks, percentile stage 2) calls the Impl
  // directly so one query folds exactly once.
  Status RawScanImpl(uint32_t source_id, TimeRange t_range, const RecordCallback& cb,
                     QueryTrace* trace) const;
  Status IndexedScanValuesImpl(uint32_t source_id, uint32_t index_id, TimeRange t_range,
                               ValueRange v_range, const ValueCallback& cb,
                               QueryTrace* trace) const;
  Result<uint64_t> CountRecordsImpl(uint32_t source_id, TimeRange t_range,
                                    QueryTrace* trace) const;
  Result<double> IndexedAggregateImpl(uint32_t source_id, uint32_t index_id, TimeRange t_range,
                                      AggregateMethod method, double percentile,
                                      QueryTrace* trace) const;
  Snapshot TakeSnapshot(const SourceState* src) const;
  Result<IndexSnapshot> GetIndexSnapshot(uint32_t index_id) const;
  const SourceState* FindSource(uint32_t source_id) const;

  // A query's planned candidate chunks. In timestamp-index mode the plan
  // holds only summary-frame addresses (collected with a cheap forward sweep
  // of the timestamp index — no summary reads), so the expensive summary
  // load + decode + filter runs per candidate, possibly on pool workers. In
  // the chunk-index-only ablation mode the serial chunk-log sweep already
  // decoded and filtered the summaries.
  struct CandidatePlan {
    std::vector<uint64_t> addrs;  // summary frame addresses, oldest-first
    std::vector<std::shared_ptr<const ChunkSummary>> preloaded;  // ablation mode
    bool use_preloaded = false;
    size_t size() const { return use_preloaded ? preloaded.size() : addrs.size(); }
  };
  Status PlanCandidates(const Snapshot& snap, TimeRange t_range, CandidatePlan* plan,
                        QueryTrace* trace) const;

  // Per-candidate outcome, produced by a worker (or inline when serial) and
  // folded by the coordinator strictly in candidate order — that ordering is
  // what keeps parallel results byte-identical to serial execution, double
  // non-associativity included.
  struct ChunkOutcome {
    enum class Kind : uint8_t {
      kFiltered,  // failed the snapshot/retention/time filters: not a candidate
      kPruned,    // summary settled it without record reads
      kFolded,    // summary bins folded into the aggregate (subset of pruned)
      kScanned,   // record data was read
    };
    Kind kind = Kind::kFiltered;
    std::shared_ptr<const ChunkSummary> summary;
    // Aggregate/histogram path: scanned (value, arrival ts) pairs, log order.
    std::vector<std::pair<double, TimestampNanos>> values;
    // IndexedScanValues path: buffered matches, log order. The payload is
    // copied out of the scan window so emission can happen later on the
    // coordinator.
    struct Match {
      double value = 0.0;
      TimestampNanos ts = 0;
      uint64_t addr = 0;
      std::vector<uint8_t> payload;
    };
    std::vector<Match> matches;
  };

  // Loads candidate `c` of the plan and applies the candidate filters
  // (retention floor re-checked here, per worker / per morsel; snapshot
  // boundary; time-range overlap). A filtered-out candidate yields a null
  // summary. Counts cache hits/misses into `trace`.
  Result<std::shared_ptr<const ChunkSummary>> LoadCandidate(const CandidatePlan& plan, size_t c,
                                                            const Snapshot& snap,
                                                            TimeRange t_range,
                                                            QueryTrace* trace) const;

  // Classifies + processes one candidate for the aggregate/histogram path.
  // Safe to call concurrently for distinct candidates. `ring` (nullable) is
  // this query's prefetch job; every call takes slot `c` so the ring's
  // read-ahead window keeps advancing even across pruned candidates.
  Status ProcessAggregateCandidate(uint32_t source_id, uint32_t index_id,
                                   const IndexSnapshot& idx, TimeRange t_range,
                                   const Snapshot& snap, const CandidatePlan& plan, size_t c,
                                   ChunkPrefetcher::Job* ring, ChunkOutcome* out,
                                   QueryTrace* trace) const;
  // Same for the IndexedScanValues path (prune decision + buffered matches).
  Status ProcessScanCandidate(uint32_t source_id, uint32_t index_id, const IndexSnapshot& idx,
                              TimeRange t_range, ValueRange v_range, uint32_t first_bin,
                              uint32_t last_bin, const Snapshot& snap, const CandidatePlan& plan,
                              size_t c, ChunkPrefetcher::Job* ring, ChunkOutcome* out,
                              QueryTrace* trace) const;

  // Submits the plan's candidate record chunks to the prefetch ring so chunk
  // c+depth streams off the log while workers decode chunk c. Candidate
  // chunks are consecutive (chunk events are emitted once per finalized
  // chunk, in order), so the ranges derive from the first candidate's
  // chunk_addr arithmetically — one 8-byte chunk-log read, no summary
  // decodes on the coordinator. Returns null (no ring) when prefetching is
  // disabled, the plan is preloaded/small, or the derivation read fails.
  // Consumers verify a taken buffer against the candidate's decoded
  // chunk_addr before trusting it, so a stale derivation degrades to a miss.
  std::unique_ptr<ChunkPrefetcher::Job> SubmitCandidatePrefetch(const CandidatePlan& plan,
                                                                const Snapshot& snap) const;

  // True when this query may fan out to the pool (pool configured and the
  // caller is not itself a pool worker — no nested parallelism).
  bool CanRunParallel() const;

  // Parallel backward chain walk for RawScan: record-marker targets partition
  // the chain into segments scanned by workers, with ordered (newest-first)
  // emission on the caller. Sets *executed = false (caller falls back to the
  // serial walk) when the range yields too few segments to be worth it.
  Status RawScanParallel(uint32_t source_id, TimeRange t_range, const Snapshot& snap,
                         uint64_t start, const RecordCallback& cb, QueryTrace* trace,
                         bool* executed) const;

  // Collects summaries of fully-indexed chunks overlapping `t_range`
  // (oldest-first), honoring the snapshot boundary: PlanCandidates + serial
  // in-order loads. Summaries are shared with the decoded-summary cache —
  // never mutated.
  Status CollectCandidateSummaries(const Snapshot& snap, TimeRange t_range,
                                   std::vector<std::shared_ptr<const ChunkSummary>>& out,
                                   QueryTrace* trace) const;

  // --- Tiered storage internals (archive_dir set) --------------------------

  // One archived block a query may have to consult: the zone map points into
  // the reader's footer, and the shared reader keeps it alive for the whole
  // query even if the catalog grows concurrently.
  struct ArchiveCandidate {
    std::shared_ptr<const ArchiveReader> reader;
    size_t block = 0;
    const ChunkSummary* summary = nullptr;  // zone map, owned by `reader`
  };
  // Collects archived blocks overlapping `t_range` whose chunks sit wholly
  // below `floor` (the hot retention floor snapshotted at plan time), in
  // demotion (= hot-log address, = time) order. Blocks at or above the floor
  // are excluded — the hot tier still serves those chunks, so the two tiers
  // never double-deliver. Counts consulted archives into `trace`.
  std::vector<ArchiveCandidate> PlanArchiveCandidates(uint64_t floor, TimeRange t_range,
                                                      QueryTrace* trace) const;
  // Decompresses one archived block and streams its records filtered by
  // (source_id, t_range), reproducing the original hot-log RecordViews from
  // the stored address column. Accounts examined records and compressed
  // bytes (bytes_read and tier_bytes_read) into `trace`.
  Status ScanArchiveBlockFor(const ArchiveCandidate& cand, uint32_t source_id,
                             TimeRange t_range,
                             const std::function<bool(const RecordView&)>& fn,
                             QueryTrace* trace) const;
  // Archive-tier continuation of RawScan, run after the hot backward walk:
  // emits matching archived records newest block first, records within each
  // block reversed, so the overall delivery stays newest-first. Blocks are
  // pruned by zone-map presence and counted into both the main chunks_* and
  // the tier_* trace families.
  Status RawScanArchiveTier(uint32_t source_id, TimeRange t_range, const RecordCallback& cb,
                            QueryTrace* trace) const;
  // Opens the catalog (startup sweep included), pins the retention barrier
  // at 0 so nothing is dropped before it is archived, registers the tier
  // gauges, and starts the background demoter when demote_interval_ms > 0.
  Status InitTiering();
  void DemoterMain();
  // One demotion pass body. Caller holds demote_mu_.
  Status DemoteOnce();

  // Shared accumulation phase of IndexedAggregate / IndexedHistogram: folds
  // chunk summaries where possible and scans partial/unindexed/active data.
  struct BinAccumulation {
    Snapshot snap;
    BinStats merged;
    std::vector<uint64_t> bin_counts;
    // Values from records that had to be scanned (bounded: a few chunks).
    std::vector<double> loose_values;
    // Collected once per query; the percentile path reuses this vector for
    // its second (target-bin materialization) stage instead of re-reading.
    std::vector<std::shared_ptr<const ChunkSummary>> candidates;
    // Archived blocks this query consulted (readers keep zone maps alive).
    std::vector<ArchiveCandidate> archive_candidates;
    // Candidates folded purely from summary bins (percentile stage 2 rescans
    // only these when their bins hold the target rank). `summary` points
    // into `candidates` or an `archive_candidates` footer; `archive_ref`
    // says which tier a stage-2 rescan must read (-1 = hot record log,
    // otherwise an index into archive_candidates).
    struct MergedChunk {
      const ChunkSummary* summary = nullptr;
      int archive_ref = -1;
    };
    std::vector<MergedChunk> fully_merged;
  };
  Status AccumulateIndexed(uint32_t source_id, uint32_t index_id, const IndexSnapshot& idx,
                           TimeRange t_range, BinAccumulation* out, QueryTrace* trace) const;
  // Returns the summary frame at `addr`, from the decoded-summary cache when
  // possible, falling back to two log reads + decode (and then populating
  // the cache).
  Result<std::shared_ptr<const ChunkSummary>> ReadSummary(uint64_t addr, uint64_t chunk_tail,
                                                          QueryTrace* trace) const;
  // Lazily drops cached summaries for chunks the record log no longer
  // retains. Called from query threads when the floor advanced.
  void MaybeInvalidateCacheForRetention(uint64_t floor) const;

  // Scans records in [from, to) of the record log, invoking `fn` for every
  // record (all sources). `fn` returns false to stop. Records examined and
  // bytes decoded accumulate into `trace` (never null on internal paths).
  // Decoding runs chunk-at-a-time through the dispatched kernel set: the
  // whole chunk span is fetched, batch-decoded into SoA arrays, and emitted
  // in order (so early stops observe the exact serial prefix).
  Status ScanRecordRange(uint64_t from, uint64_t to,
                         const std::function<bool(const RecordView&)>& fn,
                         QueryTrace* trace) const;
  // Filtered variant: only records matching (source_id, t_range) reach `fn`;
  // the predicate runs vectorized over each decoded batch. Trace accounting
  // (records_examined / bytes_read) still covers every record visited,
  // matching the unfiltered scan with an fn-side filter bit for bit.
  // `preloaded`, when non-empty, holds the record bytes starting at `from`
  // (a prefetched chunk); spans inside it skip the read cache entirely.
  Status ScanRecordRangeFor(uint64_t from, uint64_t to, uint32_t source_id, TimeRange t_range,
                            std::span<const uint8_t> preloaded,
                            const std::function<bool(const RecordView&)>& fn,
                            QueryTrace* trace) const;
  // Shared body of the two variants above.
  Status ScanRecordRangeInternal(uint64_t from, uint64_t to, bool filtered, uint32_t source_id,
                                 TimeRange t_range, std::span<const uint8_t> preloaded,
                                 const std::function<bool(const RecordView&)>& fn,
                                 QueryTrace* trace) const;

  const LoomOptions options_;
  Clock* clock_;
  std::unique_ptr<Clock> owned_clock_;

  // Metrics. `metrics_` points at the shared registry from LoomOptions or at
  // `owned_metrics_`. Declared before the logs: their flusher threads observe
  // registry histograms until joined in ~HybridLog, so the owned registry
  // must be destroyed after them (members destroy in reverse order).
  MetricsRegistry* metrics_ = nullptr;
  std::unique_ptr<MetricsRegistry> owned_metrics_;

  std::unique_ptr<HybridLog> record_log_;
  std::unique_ptr<HybridLog> chunk_log_;
  std::unique_ptr<HybridLog> ts_log_;

  TimestampIndexWriter ts_writer_;
  ChunkSummaryBuilder builder_;

  // Writer-side registries. Sources/indexes are never destroyed while the
  // engine lives (closed ones are marked), so readers can hold pointers.
  std::unordered_map<uint32_t, std::unique_ptr<SourceState>> sources_;
  std::unordered_map<uint32_t, std::unique_ptr<IndexState>> indexes_;
  uint32_t next_index_id_ = 1;

  // Reader-visible copies of index definitions, guarded by schema_mu_.
  mutable std::mutex schema_mu_;
  std::unordered_map<uint32_t, IndexSnapshot> index_snapshots_;

  // Record log address of the active (not yet summarized) chunk's start.
  std::atomic<uint64_t> published_indexed_tail_{0};

  // Morsel-driven parallel query pool (null when query_threads == 0). Lazily
  // started; shared by all queries on this engine.
  std::unique_ptr<QueryThreadPool> query_pool_;

  // Vectorized per-chunk kernels, resolved once at Open from
  // options.simd_mode / LOOM_SIMD / CPU detection. Never null.
  const KernelOps* kernels_ = nullptr;

  // Chunk prefetch ring (worker thread starts lazily on the first indexed
  // query when prefetch_depth > 0). Declared after the logs: its worker
  // reads the record log, so it must be destroyed first.
  mutable ChunkPrefetcher prefetcher_;

  // Tiered storage (null unless archive_dir is set). The demoter thread is
  // the only writer of archives; queries snapshot the catalog and read
  // sealed archives lock-free of it. demote_mu_ serializes demotion passes
  // (background thread and DemoteNow callers) and guards demote_cursor_.
  std::unique_ptr<ArchiveCatalog> catalog_;
  std::thread demoter_;
  std::atomic<bool> demote_stop_{false};
  std::condition_variable demote_cv_;
  mutable std::mutex demote_mu_;
  // Next chunk-log frame address to consider for demotion.
  uint64_t demote_cursor_ = 0;

  // Standing-query engine (null when enable_chunk_index is off — standing
  // evaluation folds ChunkSummaries, so without summaries there is nothing
  // to evaluate). Fed from the seal path: FinalizeChunk inline, or
  // ApplyChunkSeal on the sealing thread when pipelined. Declared after the
  // logs: its rescan callback reads the record log.
  std::unique_ptr<StandingQueryEngine> standing_;

  // Decoded chunk-summary cache (null when disabled). Query threads only.
  std::unique_ptr<SummaryCache> summary_cache_;
  // Highest record-log retention floor already pushed to the cache.
  mutable std::atomic<uint64_t> cache_invalidated_floor_{0};

  uint64_t active_chunk_start_ = 0;

  // Staged summary construction (ingest thread only). staged_indexes_ lists
  // indexes whose stage may hold data since the last seal; stage_bins_ is the
  // classify output scratch, sized to summary_stage_records.
  std::vector<IndexState*> staged_indexes_;
  std::vector<uint32_t> stage_bins_;

  // Ingest pipeline state (pipelined_ingest). The shards exist only when
  // active. Counters pair up ingest-side (enqueued/sealed, relaxed) with
  // worker-side (applied, release) so DrainIngestPipeline and the
  // finalize-lag gauge need no lock. seal_seq_next_ is ingest-thread-only;
  // seal_seq_applied_ is the apply ticket (see the SealEvent comment).
  bool pipeline_active_ = false;
  std::vector<std::unique_ptr<SealShard>> seal_shards_;
  uint64_t seal_seq_next_ = 0;
  std::atomic<uint64_t> seal_seq_applied_{0};
  std::atomic<uint64_t> events_enqueued_{0};
  std::atomic<uint64_t> events_applied_{0};
  std::atomic<uint64_t> chunks_sealed_{0};
  std::atomic<uint64_t> chunks_finalize_applied_{0};
  // Sticky first worker error: the flag is checked (relaxed) on every
  // enqueue and by Sync(); the Status itself is behind pipeline_mu_.
  std::atomic<bool> pipeline_failed_{false};
  mutable std::mutex pipeline_mu_;
  Status pipeline_status_;

  // Individual metric pointers, registered once in the constructor; they
  // stay valid for the registry's lifetime.
  struct CoreMetrics {
    Counter* records_ingested = nullptr;
    Counter* bytes_ingested = nullptr;
    Counter* chunks_finalized = nullptr;
    Counter* ts_entries = nullptr;
    Counter* push_ops = nullptr;
    Counter* push_batch_ops = nullptr;
    Counter* sync_ops = nullptr;
    Histogram* push_seconds = nullptr;        // sampled 1-in-64
    Histogram* push_batch_seconds = nullptr;  // per batch
    Histogram* sync_seconds = nullptr;
    Histogram* chunk_finalize_seconds = nullptr;
    // Query-side, folded from finished QueryTraces.
    Counter* query_chunks_considered = nullptr;
    Counter* query_chunks_pruned = nullptr;
    Counter* query_chunks_scanned = nullptr;
    Counter* query_records_examined = nullptr;
    Counter* query_bytes_read = nullptr;
    Histogram* raw_scan_seconds = nullptr;
    Histogram* indexed_scan_seconds = nullptr;
    Histogram* aggregate_seconds = nullptr;
    Histogram* histogram_seconds = nullptr;
    Histogram* count_seconds = nullptr;
    // Parallel executor, folded from finished QueryTraces.
    Counter* parallel_queries = nullptr;
    Counter* parallel_morsels = nullptr;
    Counter* parallel_worker_runs = nullptr;
    Histogram* parallel_merge_seconds = nullptr;
    // Ingest pipeline.
    Counter* ingest_chunks_sealed = nullptr;      // seals routed to the pipeline
    Histogram* ingest_finalize_seconds = nullptr; // per applied chunk seal
    Gauge* ingest_finalize_stall = nullptr;       // cumulative ingest-side stall secs
    // Tiered storage. Demotion counters tick per demoted chunk; the block
    // counters fold from finished QueryTraces (tier_* fields).
    Counter* tier_demoted_chunks = nullptr;
    Counter* tier_demoted_records = nullptr;
    Counter* tier_demoted_bytes = nullptr;
    Counter* tier_demote_failures = nullptr;
    Counter* tier_quarantined = nullptr;
    Counter* tier_blocks_considered = nullptr;
    Counter* tier_blocks_pruned = nullptr;
    Counter* tier_blocks_scanned = nullptr;
    Counter* tier_read_bytes = nullptr;
    Histogram* tier_demote_seconds = nullptr;  // per demotion pass
  };
  CoreMetrics m_;
  // Collection hooks refreshing the summary-cache and pool gauges; removed in
  // the destructor because a shared registry may outlive this engine.
  uint64_t cache_hook_id_ = 0;
  uint64_t pool_hook_id_ = 0;
  uint64_t prefetch_hook_id_ = 0;
  uint64_t ingest_hook_id_ = 0;
  uint64_t tier_hook_id_ = 0;
  // Writer-local sampling counter for the 1-in-64 Push latency timer.
  uint64_t push_sample_tick_ = 0;

  // Registers all core metrics with `metrics_` and installs the cache hook.
  void RegisterMetrics();
  // Adds a finished trace's counters to the registry and observes
  // `total_nanos` into `op_hist` (when latency metrics are enabled).
  void FoldTraceIntoMetrics(const QueryTrace& trace, Histogram* op_hist) const;
};

}  // namespace loom

#endif  // SRC_CORE_LOOM_H_
