#include "src/core/loom.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <limits>
#include <thread>
#include <utility>

#include "src/hybridlog/cached_reader.h"

namespace loom {

namespace {

// Window used by scan-local read caches.
constexpr size_t kScanWindow = 64 << 10;

// Forward scans of the timestamp index looking for the next chunk event are
// bounded; past this many entries the query falls back to the chain walk.
constexpr uint64_t kChunkEventScanCap = 8192;

// Queries with fewer candidates than this stay serial — pool coordination
// costs more than it buys on tiny plans.
constexpr size_t kMinParallelCandidates = 4;

// Parallel RawScan needs at least this many chain segments to fan out.
constexpr size_t kMinParallelSegments = 4;

// Backward chain walks batch this many headers before running the vectorized
// time filter over them (the walk itself is data-dependent and stays serial).
constexpr size_t kChainWalkBatch = 64;

Clock* DefaultClock() {
  static MonotonicClock clock;
  return &clock;
}

size_t RoundUp(size_t value, size_t multiple) {
  return (value + multiple - 1) / multiple * multiple;
}

// Accumulates scope wall time into trace->plan_nanos, only for detailed
// (caller-requested) traces; internal bookkeeping never reads the clock.
class PlanTimer {
 public:
  explicit PlanTimer(QueryTrace* trace)
      : trace_(trace), t0_(trace->detailed ? MetricsNowNanos() : 0) {}
  ~PlanTimer() {
    if (trace_->detailed) {
      trace_->plan_nanos += MetricsNowNanos() - t0_;
    }
  }
  PlanTimer(const PlanTimer&) = delete;
  PlanTimer& operator=(const PlanTimer&) = delete;

 private:
  QueryTrace* trace_;
  uint64_t t0_;
};

// Partitions n candidates into contiguous morsels sized for `workers`
// threads: enough morsels for load balance (about four per thread, caller
// included), each within [1, 64] candidates.
std::vector<std::pair<size_t, size_t>> MakeMorsels(size_t n, size_t workers) {
  std::vector<std::pair<size_t, size_t>> morsels;
  if (n == 0) {
    return morsels;
  }
  const size_t target = (workers + 1) * 4;
  const size_t size = std::max<size_t>(1, std::min<size_t>(64, (n + target - 1) / target));
  morsels.reserve((n + size - 1) / size);
  for (size_t b = 0; b < n; b += size) {
    morsels.emplace_back(b, std::min(n, b + size));
  }
  return morsels;
}

// Per-source facts a zone map (chunk summary) states about one chunk, shared
// by the archive-tier classification in the query operators. Mirrors the
// entry sweeps in ProcessScanCandidate / ProcessAggregateCandidate.
struct ZoneFacts {
  bool has_presence = false;
  uint64_t presence_count = 0;
  uint64_t evaluated_count = 0;
  bool bin_match = false;
  TimestampNanos min_ts = 0;
  TimestampNanos max_ts = 0;
};

ZoneFacts CollectZoneFacts(const ChunkSummary& s, uint32_t source_id, uint32_t index_id,
                           uint32_t first_bin, uint32_t last_bin) {
  ZoneFacts f;
  for (const ChunkSummary::Entry& e : s.entries) {
    if (e.source_id != source_id) {
      continue;
    }
    if (e.index_id == kPresenceIndexId) {
      f.has_presence = true;
      f.presence_count = e.stats.count;
      f.min_ts = e.stats.min_ts;
      f.max_ts = e.stats.max_ts;
    } else if (e.index_id == index_id) {
      if (e.bin == kEvaluatedBin) {
        f.evaluated_count = e.stats.count;
      } else if (e.bin >= first_bin && e.bin <= last_bin) {
        f.bin_match = true;
      }
    }
  }
  return f;
}

}  // namespace

Status LoomOptions::Validate() {
  if (dir.empty()) {
    return Status::InvalidArgument("LoomOptions.dir must be set");
  }
  if (chunk_size < 2 * kRecordHeaderSize) {
    return Status::InvalidArgument("chunk_size too small");
  }
  if (summary_cache_bytes > 0 && summary_cache_shards == 0) {
    return Status::InvalidArgument(
        "summary_cache_shards must be nonzero when summary_cache_bytes > 0");
  }
  if (summary_cache_bytes == 0) {
    summary_cache_shards = 0;  // canonical "cache disabled"
  }
  if (ts_marker_period == 0) {
    ts_marker_period = 1;
  }
  if (!archive_dir.empty() && !enable_chunk_index) {
    return Status::InvalidArgument(
        "archive_dir requires enable_chunk_index (zone maps are chunk summaries)");
  }
  if (demote_batch_chunks == 0) {
    demote_batch_chunks = 1;
  }
  record_block_size = RoundUp(std::max(record_block_size, chunk_size), chunk_size);
  ts_index_block_size =
      RoundUp(std::max<size_t>(ts_index_block_size, 1024), TimestampIndexEntry::kEncodedSize);
  size_t hw = std::thread::hardware_concurrency();
  if (hw == 0) {
    hw = 1;
  }
  if (query_threads > hw * 4) {
    query_threads = hw * 4;  // oversubscribing further only adds contention
  }
  if (finalize_inflight_chunks == 0) {
    finalize_inflight_chunks = 1;
  }
  if (seal_shards == 0) {
    seal_shards = 1;
  }
  if (seal_shards > 32) {
    seal_shards = 32;  // more workers than this only adds ticket contention
  }
  if (flush_inflight_blocks == 0) {
    flush_inflight_blocks = 1;
  }
  // A stage larger than this buys nothing (classify batches are already far
  // past the kernel's vector width) and bloats the per-index buffers.
  if (summary_stage_records > 4096) {
    summary_stage_records = 4096;
  }
  return Status::Ok();
}

Result<std::unique_ptr<Loom>> Loom::Open(const LoomOptions& options) {
  LoomOptions opts = options;
  LOOM_RETURN_IF_ERROR(opts.Validate());
  // LOOM_INGEST (inline|pipelined) overrides the pipelined_ingest option,
  // mirroring LOOM_SIMD / LOOM_IO: a test matrix can force either ingest
  // path without code changes. Unset/garbage keeps the configured value.
  if (const char* env = std::getenv("LOOM_INGEST"); env != nullptr) {
    if (std::strcmp(env, "inline") == 0) {
      opts.pipelined_ingest = false;
    } else if (std::strcmp(env, "pipelined") == 0) {
      opts.pipelined_ingest = true;
    }
  }
  std::error_code ec;
  std::filesystem::create_directories(opts.dir, ec);
  if (ec) {
    return Status::IoError("create_directories " + opts.dir + ": " + ec.message());
  }
  if (opts.clock == nullptr) {
    opts.clock = DefaultClock();
  }

  // Resolve the metrics registry before the hybrid logs are created so they
  // can register their flush/stall metrics against it.
  std::unique_ptr<MetricsRegistry> owned_metrics;
  if (opts.metrics == nullptr) {
    owned_metrics = std::make_unique<MetricsRegistry>();
    opts.metrics = owned_metrics.get();
  }

  HybridLogOptions rec_opts;
  rec_opts.block_size = opts.record_block_size;
  rec_opts.retain_bytes = opts.record_retain_bytes;
  rec_opts.metrics = opts.metrics;
  rec_opts.metrics_prefix = "loom_hybridlog_record";
  rec_opts.flush_inflight_blocks = opts.flush_inflight_blocks;
  rec_opts.io_backend = opts.io_backend;
  rec_opts.sync_policy = opts.sync_policy;
  rec_opts.group_commit_bytes = opts.group_commit_bytes;
  rec_opts.group_commit_interval_ms = opts.group_commit_interval_ms;
  // The record log's block slot ring is long-lived and flushed constantly:
  // register it with the io backend so an io_uring writer can submit
  // WRITE_FIXED (no-op everywhere else). Index logs flush rarely.
  rec_opts.register_buffers = true;
  rec_opts.group_commits_metric = opts.metrics->AddCounter("loom_ingest_group_commits_total");
  rec_opts.group_commit_bytes_metric =
      opts.metrics->AddCounter("loom_ingest_group_commit_bytes");
  // The writer needs a block to fill while a full coalescing batch is in
  // flight; only the record log gets the bigger ring (index logs flush
  // rarely and keep the double-buffer default).
  rec_opts.num_blocks = std::max<size_t>(rec_opts.num_blocks, opts.flush_inflight_blocks + 1);
  rec_opts.coalesced_writes_metric =
      opts.metrics->AddCounter("loom_ingest_coalesced_writes_total");
  rec_opts.coalesced_write_bytes_metric =
      opts.metrics->AddCounter("loom_ingest_coalesced_write_bytes");
  auto record_log = HybridLog::Create(opts.dir + "/record.log", rec_opts);
  if (!record_log.ok()) {
    return record_log.status();
  }
  HybridLogOptions chunk_opts;
  chunk_opts.block_size = opts.chunk_index_block_size;
  chunk_opts.metrics = opts.metrics;
  chunk_opts.metrics_prefix = "loom_hybridlog_chunkidx";
  auto chunk_log = HybridLog::Create(opts.dir + "/chunk.idx", chunk_opts);
  if (!chunk_log.ok()) {
    return chunk_log.status();
  }
  HybridLogOptions ts_opts;
  ts_opts.block_size = opts.ts_index_block_size;
  ts_opts.metrics = opts.metrics;
  ts_opts.metrics_prefix = "loom_hybridlog_tsidx";
  auto ts_log = HybridLog::Create(opts.dir + "/ts.idx", ts_opts);
  if (!ts_log.ok()) {
    return ts_log.status();
  }
  std::unique_ptr<Loom> engine(new Loom(opts, std::move(owned_metrics),
                                        std::move(record_log.value()),
                                        std::move(chunk_log.value()),
                                        std::move(ts_log.value())));
  if (!opts.archive_dir.empty()) {
    LOOM_RETURN_IF_ERROR(engine->InitTiering());
  }
  return engine;
}

Loom::Loom(const LoomOptions& options, std::unique_ptr<MetricsRegistry> owned_metrics,
           std::unique_ptr<HybridLog> record_log, std::unique_ptr<HybridLog> chunk_log,
           std::unique_ptr<HybridLog> ts_log)
    : options_(options),
      clock_(options.clock),
      metrics_(options.metrics),
      owned_metrics_(std::move(owned_metrics)),
      record_log_(std::move(record_log)),
      chunk_log_(std::move(chunk_log)),
      ts_log_(std::move(ts_log)),
      ts_writer_(ts_log_.get()) {
  if (options_.summary_cache_bytes > 0 && options_.enable_chunk_index) {
    SummaryCacheOptions cache_opts;
    cache_opts.capacity_bytes = options_.summary_cache_bytes;
    cache_opts.shards = options_.summary_cache_shards;
    summary_cache_ = std::make_unique<SummaryCache>(cache_opts);
  }
  if (options_.query_threads > 0) {
    query_pool_ = std::make_unique<QueryThreadPool>(options_.query_threads);
  }
  // Resolve the kernel set once: an explicit simd_mode wins; kAuto consults
  // LOOM_SIMD and then autodetects. SelectKernels never returns null.
  kernels_ = SelectKernels(options_.simd_mode == SimdMode::kAuto
                               ? SimdModeFromEnv(SimdMode::kAuto)
                               : options_.simd_mode);
  stage_bins_.resize(options_.summary_stage_records);
  if (options_.enable_chunk_index) {
    StandingQueryEngineOptions standing_opts;
    standing_opts.kernels = kernels_;
    standing_opts.metrics = metrics_;
    standing_opts.scan_chunk = [this](uint64_t chunk_addr, uint32_t chunk_len,
                                      uint32_t source_id, TimestampNanos start,
                                      TimestampNanos end,
                                      const std::function<bool(const RecordView&)>& fn) {
      // Straddling-chunk rescan: same batched walk as the one-shot planner's
      // scanned path, bounded to the just-sealed chunk. The caller (seal
      // path) guarantees the chunk's record bytes are published.
      QueryTrace scratch;
      return ScanRecordRangeFor(chunk_addr, chunk_addr + chunk_len, source_id,
                                TimeRange{start, end}, {}, fn, &scratch);
    };
    standing_ = std::make_unique<StandingQueryEngine>(std::move(standing_opts));
  }
  RegisterMetrics();
  if (options_.pipelined_ingest) {
    // Started after RegisterMetrics: the sealing workers observe the
    // finalize-latency histogram from their first applied event. All queues
    // exist before any worker runs so the metrics hook can sum depths.
    pipeline_active_ = true;
    seal_shards_.reserve(options_.seal_shards);
    for (size_t i = 0; i < options_.seal_shards; ++i) {
      auto shard = std::make_unique<SealShard>();
      shard->queue = std::make_unique<SpscQueue<SealEvent>>(1024);
      seal_shards_.push_back(std::move(shard));
    }
    for (size_t i = 0; i < seal_shards_.size(); ++i) {
      seal_shards_[i]->worker = std::thread([this, i] { SealShardMain(i); });
    }
  }
}

Loom::~Loom() {
  // The sealing thread writes the chunk/ts logs and observes registry
  // histograms: stop it before anything it touches goes away.
  StopIngestPipeline();
  // The demoter reads the logs and the catalog: join it before either dies.
  if (demoter_.joinable()) {
    {
      std::lock_guard<std::mutex> lock(demote_mu_);
      demote_stop_.store(true, std::memory_order_relaxed);
    }
    demote_cv_.notify_all();
    demoter_.join();
  }
  // A shared registry (LoomOptions.metrics) outlives this engine; the hooks
  // capture `summary_cache_` / `query_pool_` / `prefetcher_` / `this` and
  // must go first.
  if (cache_hook_id_ != 0) {
    metrics_->RemoveCollectionHook(cache_hook_id_);
  }
  if (pool_hook_id_ != 0) {
    metrics_->RemoveCollectionHook(pool_hook_id_);
  }
  if (prefetch_hook_id_ != 0) {
    metrics_->RemoveCollectionHook(prefetch_hook_id_);
  }
  if (ingest_hook_id_ != 0) {
    metrics_->RemoveCollectionHook(ingest_hook_id_);
  }
  if (tier_hook_id_ != 0) {
    metrics_->RemoveCollectionHook(tier_hook_id_);
  }
}

void Loom::RegisterMetrics() {
  m_.records_ingested = metrics_->AddCounter("loom_core_ingested_records_total");
  m_.bytes_ingested = metrics_->AddCounter("loom_core_ingested_bytes");
  m_.chunks_finalized = metrics_->AddCounter("loom_core_chunks_finalized_total");
  m_.ts_entries = metrics_->AddCounter("loom_core_ts_entries_total");
  m_.push_ops = metrics_->AddCounter("loom_core_push_total");
  m_.push_batch_ops = metrics_->AddCounter("loom_core_push_batch_total");
  m_.sync_ops = metrics_->AddCounter("loom_core_sync_total");
  m_.push_seconds = metrics_->AddHistogram("loom_core_push_seconds");
  m_.push_batch_seconds = metrics_->AddHistogram("loom_core_push_batch_seconds");
  m_.sync_seconds = metrics_->AddHistogram("loom_core_sync_seconds");
  m_.chunk_finalize_seconds = metrics_->AddHistogram("loom_index_chunk_finalize_seconds");
  m_.query_chunks_considered = metrics_->AddCounter("loom_query_chunks_considered_total");
  m_.query_chunks_pruned = metrics_->AddCounter("loom_query_chunks_pruned_total");
  m_.query_chunks_scanned = metrics_->AddCounter("loom_query_chunks_scanned_total");
  m_.query_records_examined = metrics_->AddCounter("loom_query_records_examined_total");
  m_.query_bytes_read = metrics_->AddCounter("loom_query_read_bytes");
  m_.raw_scan_seconds = metrics_->AddHistogram("loom_query_raw_scan_seconds");
  m_.indexed_scan_seconds = metrics_->AddHistogram("loom_query_indexed_scan_seconds");
  m_.aggregate_seconds = metrics_->AddHistogram("loom_query_aggregate_seconds");
  m_.histogram_seconds = metrics_->AddHistogram("loom_query_histogram_seconds");
  m_.count_seconds = metrics_->AddHistogram("loom_query_count_seconds");
  m_.parallel_queries = metrics_->AddCounter("loom_query_parallel_queries_total");
  m_.parallel_morsels = metrics_->AddCounter("loom_query_parallel_morsels_total");
  m_.parallel_worker_runs = metrics_->AddCounter("loom_query_parallel_worker_runs_total");
  m_.parallel_merge_seconds = metrics_->AddHistogram("loom_query_parallel_merge_seconds");
  if (query_pool_ != nullptr) {
    Gauge* pool_threads = metrics_->AddGauge("loom_query_parallel_pool_threads");
    Gauge* queue_depth = metrics_->AddGauge("loom_query_parallel_pool_queue_depth");
    QueryThreadPool* pool = query_pool_.get();
    pool_threads->Set(static_cast<double>(pool->num_threads()));
    pool_hook_id_ = metrics_->AddCollectionHook([pool, queue_depth] {
      queue_depth->Set(static_cast<double>(pool->QueueDepthApprox()));
    });
  }
  if (summary_cache_ != nullptr) {
    // The cache keeps its own atomics (query threads bump them with no
    // registry in sight); a collection hook folds them into gauges at each
    // Snapshot() so scrapes see current values without double counting.
    Gauge* hits = metrics_->AddGauge("loom_cache_hits_total");
    Gauge* misses = metrics_->AddGauge("loom_cache_misses_total");
    Gauge* evictions = metrics_->AddGauge("loom_cache_evictions_total");
    Gauge* invalidated = metrics_->AddGauge("loom_cache_invalidated_total");
    Gauge* bytes_used = metrics_->AddGauge("loom_cache_used_bytes");
    Gauge* entries = metrics_->AddGauge("loom_cache_entries_total");
    SummaryCache* cache = summary_cache_.get();
    cache_hook_id_ = metrics_->AddCollectionHook(
        [cache, hits, misses, evictions, invalidated, bytes_used, entries] {
          const SummaryCacheStats s = cache->stats();
          hits->Set(static_cast<double>(s.hits));
          misses->Set(static_cast<double>(s.misses));
          evictions->Set(static_cast<double>(s.evictions));
          invalidated->Set(static_cast<double>(s.invalidated));
          bytes_used->Set(static_cast<double>(s.bytes_used));
          entries->Set(static_cast<double>(s.entries));
        });
  }
  {
    // The active kernel set, exported as a one-hot style gauge (0 scalar,
    // 1 avx2, 2 neon) so dashboards can tell which dispatch a node runs.
    Gauge* kernel_mode = metrics_->AddGauge("loom_query_kernel_mode");
    const char* name = kernels_->name;
    kernel_mode->Set(std::strcmp(name, "avx2") == 0   ? 1.0
                     : std::strcmp(name, "neon") == 0 ? 2.0
                                                      : 0.0);
  }
  if (options_.prefetch_depth > 0) {
    // The ring keeps its own counters under its mutex; fold them into gauges
    // at each Snapshot(), mirroring the summary-cache pattern.
    Gauge* issued = metrics_->AddGauge("loom_query_prefetch_issued_total");
    Gauge* hits = metrics_->AddGauge("loom_query_prefetch_hits_total");
    Gauge* wasted = metrics_->AddGauge("loom_query_prefetch_wasted_total");
    Gauge* depth = metrics_->AddGauge("loom_query_prefetch_ring_depth");
    ChunkPrefetcher* ring = &prefetcher_;
    prefetch_hook_id_ =
        metrics_->AddCollectionHook([ring, issued, hits, wasted, depth] {
          const ChunkPrefetcher::Stats s = ring->stats();
          issued->Set(static_cast<double>(s.issued));
          hits->Set(static_cast<double>(s.hits));
          wasted->Set(static_cast<double>(s.wasted));
          depth->Set(static_cast<double>(s.depth));
        });
  }
  {
    // Tiered-storage family. Demotion counters tick in the demoter; the
    // per-query block counters fold from finished traces. Registered
    // unconditionally (always zero without archive_dir) so exposition is
    // stable across configurations; the catalog gauges join in InitTiering.
    m_.tier_demoted_chunks = metrics_->AddCounter("loom_tier_demoted_chunks_total");
    m_.tier_demoted_records = metrics_->AddCounter("loom_tier_demoted_records_total");
    m_.tier_demoted_bytes = metrics_->AddCounter("loom_tier_demoted_bytes");
    m_.tier_demote_failures = metrics_->AddCounter("loom_tier_demote_failures_total");
    m_.tier_quarantined = metrics_->AddCounter("loom_tier_quarantined_total");
    m_.tier_blocks_considered = metrics_->AddCounter("loom_tier_blocks_considered_total");
    m_.tier_blocks_pruned = metrics_->AddCounter("loom_tier_blocks_pruned_total");
    m_.tier_blocks_scanned = metrics_->AddCounter("loom_tier_blocks_scanned_total");
    m_.tier_read_bytes = metrics_->AddCounter("loom_tier_read_bytes");
    m_.tier_demote_seconds = metrics_->AddHistogram("loom_tier_demote_seconds");
  }
  {
    // Ingest-pipeline family. The cumulative counters live in the engine /
    // record log as writer-owned or pair-of-atomics state; a hook folds them
    // into gauges at each Snapshot(), mirroring the summary-cache pattern.
    m_.ingest_chunks_sealed = metrics_->AddCounter("loom_ingest_chunks_sealed_total");
    m_.ingest_finalize_seconds = metrics_->AddHistogram("loom_ingest_finalize_seconds");
    m_.ingest_finalize_stall = metrics_->AddGauge("loom_ingest_finalize_stall_seconds_total");
    Gauge* writer_stall = metrics_->AddGauge("loom_ingest_writer_stall_seconds_total");
    Gauge* flush_depth = metrics_->AddGauge("loom_ingest_flush_queue_depth");
    Gauge* finalize_depth = metrics_->AddGauge("loom_ingest_finalize_queue_depth");
    Gauge* shard_depth_max = metrics_->AddGauge("loom_ingest_seal_shard_queue_depth_max");
    Gauge* finalize_lag = metrics_->AddGauge("loom_ingest_finalize_lag_chunks");
    // Sealing-worker count (0 = inline ingest), so dashboards can tell the
    // seal topology a node runs without reading its config.
    Gauge* seal_shards_gauge = metrics_->AddGauge("loom_ingest_seal_shards");
    seal_shards_gauge->Set(
        options_.pipelined_ingest ? static_cast<double>(options_.seal_shards) : 0.0);
    // Resolved flush backend as a mode gauge (0 sync, 1 io_uring), like
    // loom_query_kernel_mode; the fixed-buffer gauge says whether the
    // io_uring writer additionally registered the slot ring (WRITE_FIXED).
    Gauge* io_mode = metrics_->AddGauge("loom_ingest_io_backend_mode");
    Gauge* write_fixed = metrics_->AddGauge("loom_ingest_io_write_fixed_mode");
    const char* io_name = record_log_->io_backend_name();
    io_mode->Set(std::strncmp(io_name, "io_uring", 8) == 0 ? 1.0 : 0.0);
    write_fixed->Set(std::strcmp(io_name, "io_uring_fixed") == 0 ? 1.0 : 0.0);
    HybridLog* rec = record_log_.get();
    ingest_hook_id_ = metrics_->AddCollectionHook(
        [this, rec, writer_stall, flush_depth, finalize_depth, shard_depth_max, finalize_lag] {
          writer_stall->Set(static_cast<double>(rec->writer_stall_nanos()) * 1e-9);
          flush_depth->Set(static_cast<double>(rec->FlushQueueDepthApprox()));
          size_t depth_sum = 0;
          size_t depth_max = 0;
          for (const auto& shard : seal_shards_) {
            const size_t d = shard->queue->SizeApprox();
            depth_sum += d;
            depth_max = std::max(depth_max, d);
          }
          finalize_depth->Set(static_cast<double>(depth_sum));
          shard_depth_max->Set(static_cast<double>(depth_max));
          const uint64_t sealed = chunks_sealed_.load(std::memory_order_relaxed);
          const uint64_t applied = chunks_finalize_applied_.load(std::memory_order_relaxed);
          finalize_lag->Set(sealed >= applied ? static_cast<double>(sealed - applied) : 0.0);
        });
  }
}

void Loom::FoldTraceIntoMetrics(const QueryTrace& trace, Histogram* op_hist) const {
  if (trace.chunks_considered > 0) {
    m_.query_chunks_considered->Increment(trace.chunks_considered);
    m_.query_chunks_pruned->Increment(trace.chunks_pruned);
    m_.query_chunks_scanned->Increment(trace.chunks_scanned);
  }
  if (trace.tier_chunks_considered > 0) {
    m_.tier_blocks_considered->Increment(trace.tier_chunks_considered);
    m_.tier_blocks_pruned->Increment(trace.tier_chunks_pruned);
    m_.tier_blocks_scanned->Increment(trace.tier_chunks_scanned);
  }
  if (trace.tier_bytes_read > 0) {
    m_.tier_read_bytes->Increment(trace.tier_bytes_read);
  }
  if (trace.records_examined > 0) {
    m_.query_records_examined->Increment(trace.records_examined);
  }
  if (trace.bytes_read > 0) {
    m_.query_bytes_read->Increment(trace.bytes_read);
  }
  if (trace.parallel_morsels > 0) {
    m_.parallel_queries->Increment();
    m_.parallel_morsels->Increment(trace.parallel_morsels);
    m_.parallel_worker_runs->Increment(trace.parallel_workers);
    if (options_.enable_latency_metrics) {
      m_.parallel_merge_seconds->ObserveNanos(trace.merge_nanos);
    }
  }
  if (options_.enable_latency_metrics && op_hist != nullptr) {
    op_hist->ObserveNanos(trace.total_nanos);
  }
}

// --- Schema operators ------------------------------------------------------

Status Loom::DefineSource(uint32_t source_id) {
  if (source_id == kPadSourceId) {
    return Status::InvalidArgument("source id reserved for padding");
  }
  auto it = sources_.find(source_id);
  if (it != sources_.end()) {
    if (it->second->open) {
      return Status::AlreadyExists("source already defined");
    }
    it->second->open = true;  // reopen: the record chain continues
    return Status::Ok();
  }
  auto state = std::make_unique<SourceState>();
  state->id = source_id;
  state->open = true;
  state->presence_slot = builder_.RegisterSlot(source_id, kPresenceIndexId, 1);
  {
    std::lock_guard<std::mutex> lock(schema_mu_);
    sources_.emplace(source_id, std::move(state));
  }
  return Status::Ok();
}

Status Loom::CloseSource(uint32_t source_id) {
  auto it = sources_.find(source_id);
  if (it == sources_.end() || !it->second->open) {
    return Status::NotFound("source not defined");
  }
  SourceState& src = *it->second;
  for (IndexState* idx : src.indexes) {
    idx->open = false;
    FlushIndexStage(*idx);  // staged values still belong to the active chunk
    builder_.UnregisterSlot(idx->builder_slot);
    std::lock_guard<std::mutex> lock(schema_mu_);
    index_snapshots_.erase(idx->id);
  }
  src.indexes.clear();
  src.open = false;
  return Status::Ok();
}

Result<uint32_t> Loom::DefineIndex(uint32_t source_id, IndexFunc func, HistogramSpec spec) {
  auto it = sources_.find(source_id);
  if (it == sources_.end() || !it->second->open) {
    return Status::NotFound("source not defined");
  }
  if (!func) {
    return Status::InvalidArgument("index function must be callable");
  }
  const uint32_t id = next_index_id_++;
  auto state = std::make_unique<IndexState>();
  state->id = id;
  state->source_id = source_id;
  state->open = true;
  state->func = func;
  state->spec = spec;
  state->builder_slot =
      builder_.RegisterSlot(source_id, id, static_cast<uint32_t>(spec.num_bins()));
  it->second->indexes.push_back(state.get());
  {
    std::lock_guard<std::mutex> lock(schema_mu_);
    index_snapshots_.emplace(id, IndexSnapshot{source_id, std::move(func), std::move(spec)});
    indexes_.emplace(id, std::move(state));
  }
  return id;
}

Status Loom::CloseIndex(uint32_t index_id) {
  auto it = indexes_.find(index_id);
  if (it == indexes_.end() || !it->second->open) {
    return Status::NotFound("index not defined");
  }
  IndexState& idx = *it->second;
  idx.open = false;
  FlushIndexStage(idx);  // staged values still belong to the active chunk
  builder_.UnregisterSlot(idx.builder_slot);
  auto src_it = sources_.find(idx.source_id);
  if (src_it != sources_.end()) {
    auto& vec = src_it->second->indexes;
    vec.erase(std::remove(vec.begin(), vec.end(), &idx), vec.end());
  }
  {
    std::lock_guard<std::mutex> lock(schema_mu_);
    index_snapshots_.erase(index_id);
  }
  return Status::Ok();
}

// --- Ingest ------------------------------------------------------------------

Status Loom::Push(uint32_t source_id, std::span<const uint8_t> payload,
                  TimestampNanos* arrival_ts) {
  // Timing every Push would cost two clock reads per record — more than the
  // append itself for small payloads — so the latency histogram is fed by a
  // 1-in-64 sample. Counters are always exact.
  m_.push_ops->Increment();
  const bool sampled = options_.enable_latency_metrics && (push_sample_tick_++ & 63) == 0;
  const uint64_t t0 = sampled ? MetricsNowNanos() : 0;
  auto it = sources_.find(source_id);
  if (it == sources_.end() || !it->second->open) {
    return Status::NotFound("source not defined");
  }
  if (pipeline_failed_.load(std::memory_order_relaxed)) {
    return PipelineStatus();  // the sealing thread hit a sticky error
  }
  SourceState& src = *it->second;
  const TimestampNanos now = clock_->NowNanos();
  LOOM_RETURN_IF_ERROR(AppendRecord(src, payload, now));
  if (arrival_ts != nullptr) {
    *arrival_ts = now;
  }
  PublishAll(src);
  if (sampled) {
    m_.push_seconds->ObserveNanos(MetricsNowNanos() - t0);
  }
  return Status::Ok();
}

Status Loom::PushBatch(uint32_t source_id,
                       std::span<const std::span<const uint8_t>> payloads) {
  m_.push_batch_ops->Increment();
  ScopedLatencyTimer timer(options_.enable_latency_metrics ? m_.push_batch_seconds : nullptr);
  auto it = sources_.find(source_id);
  if (it == sources_.end() || !it->second->open) {
    return Status::NotFound("source not defined");
  }
  if (payloads.empty()) {
    return Status::Ok();
  }
  if (pipeline_failed_.load(std::memory_order_relaxed)) {
    return PipelineStatus();  // the sealing thread hit a sticky error
  }
  SourceState& src = *it->second;
  const TimestampNanos now = clock_->NowNanos();
  size_t appended = 0;
  Status status = Status::Ok();
  for (const std::span<const uint8_t>& payload : payloads) {
    status = AppendRecord(src, payload, now);
    if (!status.ok()) {
      break;
    }
    ++appended;
  }
  if (appended > 0) {
    PublishAll(src);  // records before the failure stay published
  }
  return status;
}

Status Loom::AppendRecord(SourceState& src, std::span<const uint8_t> payload,
                          TimestampNanos now) {
  const size_t need = kRecordHeaderSize + payload.size();
  if (need > options_.chunk_size) {
    return Status::InvalidArgument("record larger than chunk size");
  }

  // Chunk accounting: pad and finalize the active chunk if the record does
  // not fit in its remainder (§5.4).
  const uint64_t chunk_end = active_chunk_start_ + options_.chunk_size;
  if (record_log_->tail() + need > chunk_end) {
    const size_t pad = static_cast<size_t>(chunk_end - record_log_->tail());
    if (pad > 0) {
      auto reserved = record_log_->AppendReserve(pad);
      if (!reserved.ok()) {
        return reserved.status();
      }
      std::memset(reserved.value().second, 0xFF, pad);
    }
    LOOM_RETURN_IF_ERROR(FinalizeChunk(now));
    active_chunk_start_ = chunk_end;
  }

  // Append the record.
  auto reserved = record_log_->AppendReserve(need);
  if (!reserved.ok()) {
    return reserved.status();
  }
  const uint64_t addr = reserved.value().first;
  RecordHeader header;
  header.source_id = src.id;
  header.payload_len = static_cast<uint32_t>(payload.size());
  header.ts = now;
  header.prev_addr = src.last_record_addr;
  header.EncodeTo(reserved.value().second);
  if (!payload.empty()) {
    std::memcpy(reserved.value().second + kRecordHeaderSize, payload.data(), payload.size());
  }
  src.last_record_addr = addr;
  ++src.record_count;
  m_.records_ingested->Increment();
  m_.bytes_ingested->Increment(payload.size());

  // Update the active chunk summary (presence + every index on the source).
  builder_.UpdatePresence(src.presence_slot, now);
  const size_t stage_cap = options_.summary_stage_records;
  if (stage_cap > 0) {
    // Staged path: buffer the extracted value and batch-classify later with
    // the vectorized kernel; bit-identical to the scalar path below because
    // per-(slot, bin) accumulation order still equals record order.
    for (IndexState* idx : src.indexes) {
      if (!idx->stage_listed) {
        idx->stage_listed = true;
        staged_indexes_.push_back(idx);
      }
      ++idx->stage_evaluated;
      std::optional<double> value = idx->func(payload);
      if (value.has_value()) {
        idx->stage_values.push_back(*value);
        idx->stage_ts.push_back(now);
        if (idx->stage_values.size() >= stage_cap) {
          FlushIndexStage(*idx);
        }
      }
    }
  } else {
    for (IndexState* idx : src.indexes) {
      builder_.NoteEvaluated(idx->builder_slot);
      std::optional<double> value = idx->func(payload);
      if (value.has_value()) {
        builder_.Update(idx->builder_slot, idx->spec.BinOf(*value), *value, now);
      }
    }
  }

  return MaybeWriteMarker(src, now, addr);
}

void Loom::FlushIndexStage(IndexState& idx) {
  if (idx.stage_evaluated > 0) {
    builder_.NoteEvaluatedBatch(idx.builder_slot, idx.stage_evaluated);
    idx.stage_evaluated = 0;
  }
  const size_t n = idx.stage_values.size();
  if (n == 0) {
    return;
  }
  if (stage_bins_.size() < n) {
    stage_bins_.resize(n);
  }
  idx.spec.ClassifyBatch(*kernels_, idx.stage_values.data(), n, stage_bins_.data());
  builder_.UpdateBatch(idx.builder_slot, stage_bins_.data(), idx.stage_values.data(),
                       idx.stage_ts.data(), n);
  idx.stage_values.clear();
  idx.stage_ts.clear();
}

void Loom::FlushSummaryStages() {
  for (IndexState* idx : staged_indexes_) {
    FlushIndexStage(*idx);
    idx->stage_listed = false;
  }
  staged_indexes_.clear();
}

Status Loom::FinalizeChunk(TimestampNanos now) {
  // Per chunk, not per record: a full timer here is cheap and finalize
  // latency (encode + two index appends) is a leading probe-effect signal.
  ScopedLatencyTimer timer(options_.enable_latency_metrics ? m_.chunk_finalize_seconds : nullptr);
  FlushSummaryStages();
  m_.chunks_finalized->Increment();
  if (pipeline_active_ && options_.enable_chunk_index) {
    // Publish the record log first: once a sealing worker applies this
    // event it advances published_indexed_tail_ past the chunk, and §5.4
    // requires every record byte below that watermark (the pad tail
    // included) to be reader-visible already.
    record_log_->Publish();
    m_.ingest_chunks_sealed->Increment();
    SealEvent ev;
    ev.kind = SealEvent::Kind::kChunk;
    // Detach (cheap state move) here; the expensive materialize + encode
    // runs on the worker, off the record hot path.
    ev.pending = builder_.Detach(active_chunk_start_, static_cast<uint32_t>(options_.chunk_size));
    ev.ts = now;
    return EnqueueSealEvent(std::move(ev), /*is_chunk=*/true);
  }
  ChunkSummary summary =
      builder_.Finalize(active_chunk_start_, static_cast<uint32_t>(options_.chunk_size));
  if (!options_.enable_chunk_index) {
    return Status::Ok();
  }
  std::vector<uint8_t> buf;
  buf.reserve(4 + summary.EncodedSize());
  PutU32(buf, static_cast<uint32_t>(summary.EncodedSize()));
  summary.EncodeTo(buf);
  auto addr = chunk_log_->Append(std::span<const uint8_t>(buf.data(), buf.size()));
  if (!addr.ok()) {
    return addr.status();
  }
  if (options_.enable_timestamp_index) {
    auto event = ts_writer_.AppendChunkEvent(now, addr.value());
    if (!event.ok()) {
      return event.status();
    }
    m_.ts_entries->Increment();
  }
  if (standing_ != nullptr) {
    if (standing_->has_queries()) {
      // Standing rescans read the sealed chunk's record bytes through the
      // published watermark, and the caller's PublishAll has not run yet.
      record_log_->Publish();
    }
    standing_->OnChunkSealed(summary, now);
  }
  return Status::Ok();
}

Status Loom::MaybeWriteMarker(SourceState& src, TimestampNanos ts, uint64_t record_addr) {
  if (!options_.enable_timestamp_index) {
    return Status::Ok();
  }
  ++src.records_since_marker;
  if (src.records_since_marker < options_.ts_marker_period && src.record_count != 1) {
    return Status::Ok();
  }
  src.records_since_marker = 0;
  if (pipeline_active_) {
    // The sealing thread owns the ts log (and the per-source marker chains)
    // in pipelined mode. Publish the record log before routing the event:
    // readers reached via a published marker must find the record.
    record_log_->Publish();
    SealEvent ev;
    ev.kind = SealEvent::Kind::kMarker;
    ev.source_id = src.id;
    ev.record_addr = record_addr;
    ev.ts = ts;
    return EnqueueSealEvent(std::move(ev), /*is_chunk=*/false);
  }
  auto marker = ts_writer_.AppendRecordMarker(src.id, ts, record_addr, src.last_marker_addr);
  if (!marker.ok()) {
    return marker.status();
  }
  src.last_marker_addr = marker.value();
  m_.ts_entries->Increment();
  return Status::Ok();
}

void Loom::PublishAll(SourceState& src) {
  if (pipeline_active_) {
    // Pipelined ingest: the sealing thread publishes the chunk/ts logs and
    // advances published_indexed_tail_ after each applied seal, in the same
    // §5.4 order. Here only the record log and the per-source chain head are
    // published; the indexed watermark lags until finalize lands, which
    // readers already tolerate (a sealing chunk is unindexed tail, scanned
    // raw against the record watermark).
    record_log_->Publish();
    if (!options_.enable_chunk_index) {
      // Ablation: no summaries ever exist, so no seal events flow through the
      // pipeline; advance the watermark inline exactly as the inline path.
      published_indexed_tail_.store(active_chunk_start_, std::memory_order_release);
    }
    src.published_last_record.store(src.last_record_addr, std::memory_order_release);
    return;
  }
  // §5.4 ordering: record log, then chunk index, then timestamp index, then
  // the derived watermarks. Readers capture in the reverse order.
  record_log_->Publish();
  chunk_log_->Publish();
  ts_log_->Publish();
  published_indexed_tail_.store(active_chunk_start_, std::memory_order_release);
  src.published_last_record.store(src.last_record_addr, std::memory_order_release);
}

Status Loom::Sync(uint32_t source_id) {
  m_.sync_ops->Increment();
  ScopedLatencyTimer timer(options_.enable_latency_metrics ? m_.sync_seconds : nullptr);
  auto it = sources_.find(source_id);
  if (it == sources_.end()) {
    return Status::NotFound("source not defined");
  }
  DrainIngestPipeline();
  PublishAll(*it->second);
  if (pipeline_failed_.load(std::memory_order_relaxed)) {
    return PipelineStatus();
  }
  return Status::Ok();
}

// --- Ingest pipeline ---------------------------------------------------------

Status Loom::EnqueueSealEvent(SealEvent&& ev, bool is_chunk) {
  if (pipeline_failed_.load(std::memory_order_relaxed)) {
    return PipelineStatus();
  }
  // Routing: chunk seals round-robin over the shards (by upcoming sequence
  // number) so materialize + encode load-balances; markers by source hash so
  // each source's marker chain lives on exactly one worker.
  const size_t num_shards = seal_shards_.size();
  const size_t shard_idx =
      is_chunk ? static_cast<size_t>(seal_seq_next_ % num_shards)
               : static_cast<size_t>((ev.source_id * 2654435761u) % num_shards);
  SealShard& shard = *seal_shards_[shard_idx];
  // Backpressure: cap sealed-but-unapplied chunks at the configured budget
  // and never spin-move into a full queue. Producer-side SizeApprox is
  // exact, and only the consumer shrinks it, so a free slot stays free.
  const uint64_t budget = options_.finalize_inflight_chunks;
  const auto must_wait = [&] {
    if (shard.queue->SizeApprox() >= shard.queue->capacity()) {
      return true;
    }
    return is_chunk && chunks_sealed_.load(std::memory_order_relaxed) -
                               chunks_finalize_applied_.load(std::memory_order_acquire) >=
                           budget;
  };
  if (must_wait()) {
    const uint64_t t0 = MetricsNowNanos();
    while (must_wait() && !pipeline_failed_.load(std::memory_order_relaxed)) {
      std::this_thread::yield();
    }
    m_.ingest_finalize_stall->Add(static_cast<double>(MetricsNowNanos() - t0) * 1e-9);
    if (pipeline_failed_.load(std::memory_order_relaxed)) {
      return PipelineStatus();
    }
  }
  // The sequence number is stamped only once the event is certain to be
  // pushed: a consumed-but-never-enqueued sequence would stall the apply
  // ticket (and with it every shard) forever.
  ev.seq = seal_seq_next_++;
  // Counters bump before the push so applied counts never pass enqueued.
  if (is_chunk) {
    chunks_sealed_.fetch_add(1, std::memory_order_relaxed);
  }
  events_enqueued_.fetch_add(1, std::memory_order_relaxed);
  const bool pushed = shard.queue->TryPush(std::move(ev));
  (void)pushed;
  assert(pushed);
  return Status::Ok();
}

void Loom::WaitSealTurn(uint64_t seq) {
  while (seal_seq_applied_.load(std::memory_order_acquire) != seq) {
    std::this_thread::yield();
  }
}

void Loom::SealShardMain(size_t shard_idx) {
  SealShard& shard = *seal_shards_[shard_idx];
  std::vector<uint8_t> encode_buf;
  // Marker chain heads for the sources hashed to this shard. Source-hash
  // routing means no other worker ever touches these chains.
  std::unordered_map<uint32_t, uint64_t> marker_chains;
  for (;;) {
    std::optional<SealEvent> ev = shard.queue->TryPop();
    if (!ev.has_value()) {
      std::this_thread::sleep_for(std::chrono::microseconds(50));
      continue;
    }
    if (ev->kind == SealEvent::Kind::kStop) {
      return;
    }
    Status st = Status::Ok();
    if (ev->kind == SealEvent::Kind::kChunk) {
      ScopedLatencyTimer timer(options_.enable_latency_metrics ? m_.ingest_finalize_seconds
                                                               : nullptr);
      // Parallel stage: materialize the summary and encode the chunk-log
      // frame before taking the apply ticket — this is the expensive part of
      // finalization, and it runs concurrently across shards.
      ChunkSummary summary = ChunkSummaryBuilder::Materialize(std::move(ev->pending));
      encode_buf.clear();
      encode_buf.reserve(4 + summary.EncodedSize());
      PutU32(encode_buf, static_cast<uint32_t>(summary.EncodedSize()));
      summary.EncodeTo(encode_buf);
      WaitSealTurn(ev->seq);
      if (!pipeline_failed_.load(std::memory_order_relaxed)) {
        st = ApplyChunkSeal(summary, ev->ts, encode_buf);
      }
    } else {
      WaitSealTurn(ev->seq);
      if (!pipeline_failed_.load(std::memory_order_relaxed)) {
        st = ApplyMarker(*ev, marker_chains);
      }
    }
    if (!st.ok()) {
      Status annotated(st.code(), "seal shard " + std::to_string(shard_idx) + ": " +
                                      std::string(st.message()));
      std::lock_guard<std::mutex> lock(pipeline_mu_);
      if (pipeline_status_.ok()) {
        pipeline_status_ = std::move(annotated);
      }
      pipeline_failed_.store(true, std::memory_order_release);
    }
    // The ticket advances even for failed or skipped events — the release
    // store both unblocks the next sequence holder and hands it the
    // single-writer chunk/ts log state this apply mutated.
    seal_seq_applied_.store(ev->seq + 1, std::memory_order_release);
    // Applied even on error (the event is consumed either way) so drains and
    // the lag gauge terminate.
    if (ev->kind == SealEvent::Kind::kChunk) {
      chunks_finalize_applied_.fetch_add(1, std::memory_order_release);
    }
    events_applied_.fetch_add(1, std::memory_order_release);
  }
}

Status Loom::ApplyChunkSeal(const ChunkSummary& summary, TimestampNanos ts,
                            const std::vector<uint8_t>& buf) {
  const uint64_t chunk_end = summary.chunk_addr + summary.chunk_len;
  auto addr = chunk_log_->Append(std::span<const uint8_t>(buf.data(), buf.size()));
  if (!addr.ok()) {
    return addr.status();
  }
  // §5.4 apply order: the chunk frame becomes readable, then its ts-index
  // event, then the indexed watermark passes the chunk. The record bytes
  // below chunk_end were published before the seal was enqueued.
  chunk_log_->Publish();
  if (options_.enable_timestamp_index) {
    auto event = ts_writer_.AppendChunkEvent(ts, addr.value());
    if (!event.ok()) {
      return event.status();
    }
    m_.ts_entries->Increment();
    ts_log_->Publish();
  }
  published_indexed_tail_.store(chunk_end, std::memory_order_release);
  if (standing_ != nullptr) {
    // The apply ticket serializes seal events in global seal order, and the
    // record bytes below chunk_end were published before the event was
    // enqueued — exactly the ordering OnChunkSealed requires.
    standing_->OnChunkSealed(summary, ts);
  }
  return Status::Ok();
}

Status Loom::ApplyMarker(const SealEvent& ev, std::unordered_map<uint32_t, uint64_t>& chains) {
  auto it = chains.try_emplace(ev.source_id, kNullAddr).first;
  auto marker = ts_writer_.AppendRecordMarker(ev.source_id, ev.ts, ev.record_addr, it->second);
  if (!marker.ok()) {
    return marker.status();
  }
  it->second = marker.value();
  m_.ts_entries->Increment();
  ts_log_->Publish();
  return Status::Ok();
}

void Loom::DrainIngestPipeline() {
  if (!pipeline_active_) {
    return;
  }
  while (events_applied_.load(std::memory_order_acquire) <
         events_enqueued_.load(std::memory_order_relaxed)) {
    std::this_thread::yield();
  }
}

void Loom::StopIngestPipeline() {
  if (!pipeline_active_) {
    return;
  }
  DrainIngestPipeline();
  for (auto& shard : seal_shards_) {
    for (;;) {
      SealEvent stop;
      stop.kind = SealEvent::Kind::kStop;
      if (shard->queue->TryPush(std::move(stop))) {
        break;
      }
      std::this_thread::yield();
    }
  }
  for (auto& shard : seal_shards_) {
    shard->worker.join();
  }
  pipeline_active_ = false;
}

Status Loom::PipelineStatus() const {
  std::lock_guard<std::mutex> lock(pipeline_mu_);
  return pipeline_status_;
}

// --- Snapshots and lookups ----------------------------------------------------

Loom::Snapshot Loom::TakeSnapshot(const SourceState* src) const {
  Snapshot snap;
  if (src != nullptr) {
    snap.source_tail = src->published_last_record.load(std::memory_order_acquire);
  }
  snap.indexed_tail = published_indexed_tail_.load(std::memory_order_acquire);
  snap.ts_tail = ts_log_->queryable_tail();
  snap.chunk_tail = chunk_log_->queryable_tail();
  snap.record_tail = record_log_->queryable_tail();
  return snap;
}

const Loom::SourceState* Loom::FindSource(uint32_t source_id) const {
  std::lock_guard<std::mutex> lock(schema_mu_);
  auto it = sources_.find(source_id);
  if (it == sources_.end()) {
    return nullptr;
  }
  return it->second.get();
}

Result<Loom::IndexSnapshot> Loom::GetIndexSnapshot(uint32_t index_id) const {
  std::lock_guard<std::mutex> lock(schema_mu_);
  auto it = index_snapshots_.find(index_id);
  if (it == index_snapshots_.end()) {
    return Status::NotFound("index not defined");
  }
  return it->second;
}

// --- Standing queries --------------------------------------------------------

Status Loom::UnregisterStandingQuery(uint64_t query_id) {
  if (standing_ == nullptr) {
    return Status::FailedPrecondition("standing queries require enable_chunk_index");
  }
  return standing_->Unregister(query_id);
}

Result<uint64_t> Loom::RegisterStandingQuery(const StandingQuerySpec& spec) {
  if (standing_ == nullptr) {
    return Status::FailedPrecondition("standing queries require enable_chunk_index");
  }
  auto idx = GetIndexSnapshot(spec.index_id);
  if (!idx.ok()) {
    return idx.status();
  }
  if (idx.value().source_id != spec.source_id) {
    return Status::InvalidArgument("index does not cover the requested source");
  }
  return standing_->Register(spec, idx.value().func, idx.value().spec);
}

std::shared_ptr<StandingSubscription> Loom::SubscribeStanding(uint64_t query_id,
                                                              size_t capacity) {
  if (standing_ == nullptr) {
    return nullptr;
  }
  return standing_->Subscribe(query_id, capacity);
}

// --- Scan helpers ---------------------------------------------------------------

Status Loom::ScanRecordRange(uint64_t from, uint64_t to,
                             const std::function<bool(const RecordView&)>& fn,
                             QueryTrace* trace) const {
  return ScanRecordRangeInternal(from, to, /*filtered=*/false, 0, TimeRange{}, {}, fn, trace);
}

Status Loom::ScanRecordRangeFor(uint64_t from, uint64_t to, uint32_t source_id,
                                TimeRange t_range, std::span<const uint8_t> preloaded,
                                const std::function<bool(const RecordView&)>& fn,
                                QueryTrace* trace) const {
  return ScanRecordRangeInternal(from, to, /*filtered=*/true, source_id, t_range, preloaded, fn,
                                 trace);
}

Status Loom::ScanRecordRangeInternal(uint64_t from, uint64_t to, bool filtered,
                                     uint32_t source_id, TimeRange t_range,
                                     std::span<const uint8_t> preloaded,
                                     const std::function<bool(const RecordView&)>& fn,
                                     QueryTrace* trace) const {
  // Data below the retention floor is gone; scan the retained suffix. Chunk
  // alignment survives because the floor advances in block multiples and
  // blocks are chunk-aligned.
  uint64_t seen_floor = record_log_->retained_floor();
  const uint64_t preload_base = from;  // `preloaded`, when present, starts here
  from = std::max(from, seen_floor);
  if (from >= to) {
    return Status::Ok();
  }
  const uint64_t scan_t0 = trace->detailed ? MetricsNowNanos() : 0;
  // When the prefetched buffer covers the whole range the reader is never
  // constructed (candidate chunk scans on a ring hit take this path).
  std::optional<CachedLogReader> reader;
  const uint64_t chunk_size = options_.chunk_size;
  uint64_t addr = from;
  // Retention can advance mid-query: past the scan position, or merely past
  // the start of the reader's aligned window while `addr` itself is still
  // retained. The reclaimed data is gone either way, so whenever the floor
  // moved, retry the fetch — skipping to the new floor (block-aligned, hence
  // chunk-aligned) if it passed `addr`, re-clamping the window otherwise —
  // instead of failing the query. A floor that did not move means the
  // OutOfRange is real and propagates.
  const auto reclaimed_mid_scan = [&](const Status& st) {
    if (st.code() != StatusCode::kOutOfRange) {
      return false;
    }
    const uint64_t new_floor = record_log_->retained_floor();
    if (new_floor <= seen_floor) {
      return false;
    }
    seen_floor = new_floor;
    addr = std::max(addr, new_floor);
    return true;
  };
  DecodedBatch batch;
  std::vector<uint64_t> mask;
  bool done = false;
  while (!done && addr + kRecordHeaderSize <= to) {
    const uint64_t chunk_end = std::min<uint64_t>(to, addr - (addr % chunk_size) + chunk_size);
    if (chunk_end - addr < kRecordHeaderSize) {
      addr = chunk_end;
      continue;
    }
    const size_t span_len = static_cast<size_t>(chunk_end - addr);
    const uint8_t* buf = nullptr;
    if (!preloaded.empty() && addr >= preload_base &&
        (addr - preload_base) + span_len <= preloaded.size()) {
      buf = preloaded.data() + (addr - preload_base);
    } else {
      if (!reader.has_value()) {
        reader.emplace(record_log_.get(), to, kScanWindow);
      }
      auto span = reader->Fetch(addr, span_len);
      if (!span.ok()) {
        if (reclaimed_mid_scan(span.status())) {
          continue;
        }
        return span.status();
      }
      buf = span.value().data();
    }
    // Batch-decode the span, vector-filter, then emit strictly in log order
    // with per-record accounting — an early stop mid-batch leaves the trace
    // exactly where the per-record walk would have left it.
    batch.Clear();
    const size_t consumed = kernels_->decode_records(buf, span_len, addr, chunk_size, &batch);
    const size_t n = batch.size();
    if (filtered && n > 0) {
      mask.assign(MaskWords(n), 0);
      kernels_->filter_source_time(batch.source_ids.data(), batch.timestamps.data(), n,
                                   source_id, t_range.start, t_range.end, mask.data());
    }
    for (size_t i = 0; i < n; ++i) {
      const uint32_t plen = batch.payload_lens[i];
      ++trace->records_examined;
      trace->bytes_read += kRecordHeaderSize + plen;
      if (filtered && ((mask[i >> 6] >> (i & 63)) & 1) == 0) {
        continue;
      }
      RecordView view;
      view.source_id = batch.source_ids[i];
      view.ts = batch.timestamps[i];
      view.addr = batch.addrs[i];
      view.payload = std::span<const uint8_t>(
          buf + (batch.addrs[i] - addr) + kRecordHeaderSize, plen);
      if (!fn(view)) {
        done = true;
        break;
      }
    }
    if (consumed < span_len) {
      // The span ends inside a record: the snapshot boundary cut it off
      // (records never span chunks, so a mid-log truncation cannot happen on
      // writer-produced data). The per-record walk stopped here too.
      break;
    }
    addr += consumed;
  }
  if (trace->detailed) {
    trace->scan_nanos += MetricsNowNanos() - scan_t0;
  }
  return Status::Ok();
}

std::unique_ptr<ChunkPrefetcher::Job> Loom::SubmitCandidatePrefetch(const CandidatePlan& plan,
                                                                    const Snapshot& snap) const {
  if (options_.prefetch_depth == 0 || plan.use_preloaded || plan.addrs.size() < 2) {
    return nullptr;
  }
  // Frame layout: u32 length | ChunkSummary body, whose first field is the
  // u64 chunk_addr — one tiny read pins the whole candidate range, because
  // chunk events are appended once per finalized chunk in log order, making
  // candidate record chunks consecutive chunk_size-strided spans.
  uint8_t addr_buf[8];
  if (!chunk_log_->Read(plan.addrs[0] + 4, std::span<uint8_t>(addr_buf, 8)).ok()) {
    return nullptr;
  }
  const uint64_t chunk0 = LoadU64(addr_buf);
  const uint64_t chunk_size = options_.chunk_size;
  std::vector<ChunkPrefetcher::Range> ranges;
  ranges.reserve(plan.addrs.size());
  for (size_t c = 0; c < plan.addrs.size(); ++c) {
    const uint64_t start = chunk0 + c * chunk_size;
    const uint64_t end = std::min<uint64_t>(start + chunk_size, snap.record_tail);
    if (start >= end) {
      return nullptr;  // derivation ran past the snapshot: don't prefetch
    }
    ranges.push_back({start, static_cast<uint32_t>(end - start)});
  }
  return prefetcher_.Submit(record_log_.get(), std::move(ranges), options_.prefetch_depth);
}

Result<std::shared_ptr<const ChunkSummary>> Loom::ReadSummary(uint64_t addr, uint64_t chunk_tail,
                                                              QueryTrace* trace) const {
  if (addr + 4 > chunk_tail) {
    return Status::OutOfRange("summary past snapshot");
  }
  if (summary_cache_ != nullptr) {
    uint32_t frame_len = 0;
    auto hit = summary_cache_->Lookup(addr, &frame_len);
    // Frames are appended whole before the publish fence, so a snapshot tail
    // always sits at a frame boundary; the length check alone bounds the hit
    // to this query's snapshot.
    if (hit != nullptr && addr + 4 + frame_len <= chunk_tail) {
      ++trace->cache_hits;
      return hit;
    }
  }
  ++trace->cache_misses;
  uint8_t len_buf[4];
  LOOM_RETURN_IF_ERROR(chunk_log_->Read(addr, std::span<uint8_t>(len_buf, 4)));
  const uint32_t len = LoadU32(len_buf);
  if (len == 0xFFFFFFFFu || addr + 4 + len > chunk_tail) {
    return Status::DataLoss("corrupt chunk summary frame");
  }
  std::vector<uint8_t> buf(len);
  LOOM_RETURN_IF_ERROR(chunk_log_->Read(addr + 4, std::span<uint8_t>(buf.data(), len)));
  auto decoded = ChunkSummary::Decode(std::span<const uint8_t>(buf.data(), buf.size()));
  if (!decoded.ok()) {
    return decoded.status();
  }
  auto summary = std::make_shared<const ChunkSummary>(std::move(decoded.value()));
  if (summary_cache_ != nullptr) {
    summary_cache_->Insert(addr, len, summary);
  }
  return summary;
}

void Loom::MaybeInvalidateCacheForRetention(uint64_t floor) const {
  if (summary_cache_ == nullptr || floor == 0) {
    return;
  }
  uint64_t seen = cache_invalidated_floor_.load(std::memory_order_relaxed);
  while (floor > seen) {
    if (cache_invalidated_floor_.compare_exchange_weak(seen, floor,
                                                       std::memory_order_relaxed)) {
      summary_cache_->InvalidateBelowRecordFloor(floor);
      return;
    }
  }
}

// --- Tiered storage -------------------------------------------------------------

Status Loom::InitTiering() {
  auto catalog = ArchiveCatalog::Open(options_.archive_dir, m_.tier_quarantined);
  if (!catalog.ok()) {
    return catalog.status();
  }
  catalog_ = std::move(catalog.value());
  // Nothing may be dropped before it is archived: pin the retention barrier
  // at 0 before ingest can advance the floor. Demotion moves it forward past
  // each durable archive, turning retention from deletion into demotion.
  record_log_->SetRetentionBarrier(0);
  {
    Gauge* archives = metrics_->AddGauge("loom_tier_archives");
    Gauge* archived_chunks = metrics_->AddGauge("loom_tier_archived_chunks");
    Gauge* archived_bytes = metrics_->AddGauge("loom_tier_archived_bytes");
    Gauge* barrier = metrics_->AddGauge("loom_tier_retention_barrier_bytes");
    ArchiveCatalog* cat = catalog_.get();
    HybridLog* rec = record_log_.get();
    tier_hook_id_ = metrics_->AddCollectionHook(
        [cat, rec, archives, archived_chunks, archived_bytes, barrier] {
          archives->Set(static_cast<double>(cat->archive_count()));
          archived_chunks->Set(static_cast<double>(cat->total_blocks()));
          archived_bytes->Set(static_cast<double>(cat->total_bytes()));
          const uint64_t b = rec->retention_barrier();
          barrier->Set(b == kNullAddr ? 0.0 : static_cast<double>(b));
        });
  }
  if (options_.demote_interval_ms > 0) {
    demoter_ = std::thread([this] { DemoterMain(); });
  }
  return Status::Ok();
}

void Loom::DemoterMain() {
  std::unique_lock<std::mutex> lock(demote_mu_);
  while (!demote_stop_.load(std::memory_order_relaxed)) {
    demote_cv_.wait_for(lock, std::chrono::milliseconds(options_.demote_interval_ms), [this] {
      return demote_stop_.load(std::memory_order_relaxed);
    });
    if (demote_stop_.load(std::memory_order_relaxed)) {
      break;
    }
    const bool timed = options_.enable_latency_metrics;
    const uint64_t t0 = timed ? MetricsNowNanos() : 0;
    if (!DemoteOnce().ok()) {
      // Sticky failures would wedge tiering forever; the cursor did not
      // advance, so the next pass simply retries the same chunks.
      m_.tier_demote_failures->Increment();
    }
    if (timed) {
      m_.tier_demote_seconds->ObserveNanos(MetricsNowNanos() - t0);
    }
  }
}

Status Loom::DemoteNow() {
  if (catalog_ == nullptr) {
    return Status::Ok();
  }
  std::lock_guard<std::mutex> lock(demote_mu_);
  const bool timed = options_.enable_latency_metrics;
  const uint64_t t0 = timed ? MetricsNowNanos() : 0;
  Status st = DemoteOnce();
  if (!st.ok()) {
    m_.tier_demote_failures->Increment();
  }
  if (timed) {
    m_.tier_demote_seconds->ObserveNanos(MetricsNowNanos() - t0);
  }
  return st;
}

size_t Loom::ArchiveCount() const {
  return catalog_ != nullptr ? catalog_->archive_count() : 0;
}

Status Loom::DemoteOnce() {
  // Candidate window: chunks wholly below both the desired retention floor
  // (what retention would drop if the barrier let it) and the indexed
  // watermark (a candidate needs its finalized summary as the zone map).
  const uint64_t desired = record_log_->DesiredRetentionFloor();
  const uint64_t indexed = published_indexed_tail_.load(std::memory_order_acquire);
  const uint64_t limit = std::min(desired, indexed);
  const uint64_t barrier = record_log_->retention_barrier();
  if (limit == 0 || (barrier != kNullAddr && barrier >= limit)) {
    return Status::Ok();  // nothing new below the floor
  }

  // Walk chunk-log frames from the cursor, decoding summaries until one
  // reaches past the demotion limit or the batch fills. Frames are appended
  // in chunk-address order, so the walk and the record log stay in step.
  struct Demotable {
    ChunkSummary summary;
    uint64_t frame_end = 0;  // chunk-log address just past this frame
  };
  std::vector<Demotable> batch;
  const uint64_t chunk_tail = chunk_log_->queryable_tail();
  CachedLogReader reader(chunk_log_.get(), chunk_tail, kScanWindow);
  const size_t bs = chunk_log_->block_size();
  uint64_t addr = demote_cursor_;
  while (batch.size() < options_.demote_batch_chunks && addr + 4 <= chunk_tail) {
    auto len_bytes = reader.Fetch(addr, 4);
    if (!len_bytes.ok()) {
      return len_bytes.status();
    }
    const uint32_t len = LoadU32(len_bytes.value().data());
    if (len == 0xFFFFFFFFu) {
      addr = addr - (addr % bs) + bs;  // block padding
      continue;
    }
    if (addr + 4 + len > chunk_tail) {
      break;
    }
    auto body = reader.Fetch(addr + 4, len);
    if (!body.ok()) {
      return body.status();
    }
    auto summary = ChunkSummary::Decode(body.value());
    if (!summary.ok()) {
      return summary.status();
    }
    if (summary.value().chunk_addr + summary.value().chunk_len > limit) {
      break;
    }
    addr += 4 + len;
    batch.push_back({std::move(summary.value()), addr});
  }
  if (batch.empty()) {
    return Status::Ok();
  }

  // Stage the archive under a ".tmp" name; one block per demoted chunk, the
  // chunk's summary as its zone map, with the record-address column so
  // queries reproduce hot-log RecordViews bit for bit.
  char name[64];
  std::snprintf(name, sizeof(name), "tier-%016llx.loomarc",
                static_cast<unsigned long long>(batch.front().summary.chunk_addr));
  const std::string path = catalog_->dir() + "/" + name;
  auto writer = ArchiveWriter::Create(path);
  if (!writer.ok()) {
    return writer.status();
  }
  uint64_t demoted_records = 0;
  uint64_t demoted_bytes = 0;
  size_t blocks_appended = 0;
  QueryTrace scratch;  // demotion reads stay out of the query metrics
  std::vector<uint8_t> backing;
  struct RecMeta {
    uint32_t source_id;
    TimestampNanos ts;
    uint64_t addr;
    size_t offset;
    size_t len;
  };
  std::vector<RecMeta> metas;
  std::vector<ArchiveRecord> records;
  for (const Demotable& d : batch) {
    const ChunkSummary& s = d.summary;
    backing.clear();
    metas.clear();
    // Payloads are copied out of the scan window first (the span a callback
    // sees dies with the next fetch); spans are rebuilt once `backing` has
    // its final size.
    LOOM_RETURN_IF_ERROR(ScanRecordRange(
        s.chunk_addr, s.chunk_addr + s.chunk_len,
        [&](const RecordView& view) -> bool {
          metas.push_back(
              {view.source_id, view.ts, view.addr, backing.size(), view.payload.size()});
          backing.insert(backing.end(), view.payload.begin(), view.payload.end());
          return true;
        },
        &scratch));
    if (metas.empty()) {
      continue;  // padding-only chunk: nothing to archive
    }
    records.clear();
    records.reserve(metas.size());
    for (const RecMeta& m : metas) {
      records.push_back(
          {m.source_id, m.ts, m.addr, std::span<const uint8_t>(backing.data() + m.offset, m.len)});
    }
    LOOM_RETURN_IF_ERROR(writer.value().AppendBlock(records, /*with_addrs=*/true, &s));
    ++blocks_appended;
    demoted_records += metas.size();
    demoted_bytes += s.chunk_len;
  }
  if (blocks_appended > 0) {
    // Seal + durable rename, then serve it, and only then let retention
    // reclaim the hot copies: a crash anywhere in between loses no data.
    LOOM_RETURN_IF_ERROR(writer.value().Finish().status());
    LOOM_RETURN_IF_ERROR(catalog_->Register(path));
  } else {
    writer.value().Abort();  // all-padding batch: no archive needed
  }
  record_log_->SetRetentionBarrier(batch.back().summary.chunk_addr +
                                   batch.back().summary.chunk_len);
  record_log_->ApplyRetention();
  demote_cursor_ = batch.back().frame_end;
  m_.tier_demoted_chunks->Increment(blocks_appended);
  m_.tier_demoted_records->Increment(demoted_records);
  m_.tier_demoted_bytes->Increment(demoted_bytes);
  return Status::Ok();
}

std::vector<Loom::ArchiveCandidate> Loom::PlanArchiveCandidates(uint64_t floor,
                                                                TimeRange t_range,
                                                                QueryTrace* trace) const {
  std::vector<ArchiveCandidate> out;
  if (catalog_ == nullptr || floor == 0) {
    return out;
  }
  for (const std::shared_ptr<const ArchiveReader>& reader : catalog_->Snapshot()) {
    ++trace->tier_archives_consulted;
    for (size_t b = 0; b < reader->block_count(); ++b) {
      const ChunkSummary& s = reader->block(b).summary;
      if (s.chunk_addr + s.chunk_len > floor) {
        continue;  // chunk still hot at plan time: the hot tier serves it
      }
      if (s.max_ts < t_range.start || s.min_ts > t_range.end) {
        continue;  // time-disjoint, mirroring LoadCandidate's filter
      }
      out.push_back({reader, b, &s});
    }
  }
  return out;
}

Status Loom::ScanArchiveBlockFor(const ArchiveCandidate& cand, uint32_t source_id,
                                 TimeRange t_range,
                                 const std::function<bool(const RecordView&)>& fn,
                                 QueryTrace* trace) const {
  const uint64_t scan_t0 = trace->detailed ? MetricsNowNanos() : 0;
  uint64_t bytes = 0;
  Status st = cand.reader->ScanBlock(
      cand.block,
      [&](const ArchiveRecord& rec) -> bool {
        ++trace->records_examined;
        if (rec.source_id != source_id || !t_range.Contains(rec.ts)) {
          return true;
        }
        RecordView view;
        view.source_id = rec.source_id;
        view.ts = rec.ts;
        view.addr = rec.addr;
        view.payload = rec.payload;
        return fn(view);
      },
      &bytes);
  trace->bytes_read += bytes;
  trace->tier_bytes_read += bytes;
  if (trace->detailed) {
    trace->scan_nanos += MetricsNowNanos() - scan_t0;
  }
  return st;
}

Status Loom::RawScanArchiveTier(uint32_t source_id, TimeRange t_range,
                                const RecordCallback& cb, QueryTrace* trace) const {
  if (catalog_ == nullptr) {
    return Status::Ok();
  }
  const std::vector<ArchiveCandidate> archived =
      PlanArchiveCandidates(record_log_->retained_floor(), t_range, trace);
  for (size_t i = archived.size(); i-- > 0;) {
    const ArchiveCandidate& a = archived[i];
    ++trace->chunks_considered;
    ++trace->tier_chunks_considered;
    const ZoneFacts f = CollectZoneFacts(*a.summary, source_id, kPresenceIndexId, 1, 0);
    if (!f.has_presence || f.max_ts < t_range.start || f.min_ts > t_range.end) {
      ++trace->chunks_pruned;
      ++trace->tier_chunks_pruned;
      continue;
    }
    ++trace->chunks_scanned;
    ++trace->tier_chunks_scanned;
    // Blocks decode oldest-first; buffer one block's matches (bounded by a
    // chunk) and emit them reversed.
    std::vector<ChunkOutcome::Match> buffered;
    LOOM_RETURN_IF_ERROR(ScanArchiveBlockFor(
        a, source_id, t_range,
        [&](const RecordView& view) -> bool {
          ChunkOutcome::Match m;
          m.ts = view.ts;
          m.addr = view.addr;
          m.payload.assign(view.payload.begin(), view.payload.end());
          buffered.push_back(std::move(m));
          return true;
        },
        trace));
    for (size_t r = buffered.size(); r-- > 0;) {
      RecordView view;
      view.source_id = source_id;
      view.ts = buffered[r].ts;
      view.addr = buffered[r].addr;
      view.payload = std::span<const uint8_t>(buffered[r].payload);
      ++trace->records_matched;
      if (!cb(view)) {
        return Status::Ok();
      }
    }
  }
  return Status::Ok();
}

Status Loom::PlanCandidates(const Snapshot& snap, TimeRange t_range, CandidatePlan* plan,
                            QueryTrace* trace) const {
  plan->addrs.clear();
  plan->preloaded.clear();
  plan->use_preloaded = false;
  if (!options_.enable_chunk_index || snap.chunk_tail == 0) {
    return Status::Ok();
  }
  const PlanTimer plan_timer(trace);
  // Chunks below the retention floor no longer have data; skip their
  // summaries. When the floor advanced since the last query, reclaim the
  // cached summaries of dropped chunks (query-thread work — ingest never
  // touches the cache). Workers re-check the floor per candidate, so the
  // plan itself only needs it for the ablation sweep below.
  const uint64_t floor = record_log_->retained_floor();
  MaybeInvalidateCacheForRetention(floor);

  if (!options_.enable_timestamp_index) {
    // Ablation mode: no time index, so scan the whole chunk index log
    // sequentially and filter by timestamp range (still skips record data).
    plan->use_preloaded = true;
    CachedLogReader reader(chunk_log_.get(), snap.chunk_tail, kScanWindow);
    const size_t bs = chunk_log_->block_size();
    uint64_t addr = 0;
    while (addr + 4 <= snap.chunk_tail) {
      auto len_bytes = reader.Fetch(addr, 4);
      if (!len_bytes.ok()) {
        return len_bytes.status();
      }
      const uint32_t len = LoadU32(len_bytes.value().data());
      if (len == 0xFFFFFFFFu) {
        addr = addr - (addr % bs) + bs;  // block padding
        continue;
      }
      if (addr + 4 + len > snap.chunk_tail) {
        break;
      }
      auto body = reader.Fetch(addr + 4, len);
      if (!body.ok()) {
        return body.status();
      }
      auto summary = ChunkSummary::Decode(body.value());
      if (!summary.ok()) {
        return summary.status();
      }
      const ChunkSummary& s = summary.value();
      if (s.chunk_addr >= floor && s.chunk_addr + s.chunk_len <= snap.indexed_tail &&
          s.max_ts >= t_range.start && s.min_ts <= t_range.end) {
        plan->preloaded.push_back(std::make_shared<const ChunkSummary>(std::move(summary.value())));
      }
      addr += 4 + len;
    }
    return Status::Ok();
  }

  TimestampIndexReader tsr(ts_log_.get(), snap.ts_tail);
  const uint64_t n = tsr.num_entries();
  if (n == 0) {
    return Status::Ok();
  }

  // The plan deliberately reads no summaries: it derives the candidate set
  // purely from timestamp-index entries, so the expensive summary
  // load + decode runs per candidate on the executor (possibly fanned out
  // across pool workers).
  //
  // Upper bound: binary search to the first entry after t_range.end, then a
  // bounded forward scan for the next chunk event — the chunk containing
  // t_range.end is finalized after it, and chunks are time-ordered and
  // non-overlapping, so that event (inclusive) bounds the candidate set. No
  // chunk event within the cap (or no entry past the range) means every
  // chunk event up to the snapshot tail stays in play.
  //
  // One windowed reader serves the bounded scan and the collection sweep:
  // timestamp entries are 32 bytes, so per-entry HybridLog::Read calls would
  // pay the snapshot-validation protocol ~2000x per window.
  CachedLogReader ts_reader(ts_log_.get(), snap.ts_tail, kScanWindow);
  uint64_t hi = n;  // exclusive entry-index bound
  auto pos = tsr.FirstEntryAfter(t_range.end);
  if (!pos.ok()) {
    return pos.status();
  }
  if (pos.value().has_value()) {
    const uint64_t cap = std::min<uint64_t>(n, *pos.value() + kChunkEventScanCap);
    for (uint64_t i = *pos.value(); i < cap; ++i) {
      auto bytes = ts_reader.Fetch(i * TimestampIndexEntry::kEncodedSize,
                                   TimestampIndexEntry::kEncodedSize);
      if (!bytes.ok()) {
        return bytes.status();
      }
      if (TimestampIndexEntry::Decode(bytes.value().data()).kind ==
          TimestampIndexEntry::Kind::kChunk) {
        hi = i + 1;
        break;
      }
    }
  }
  // Lower bound: a chunk event's stamp is the finalize-time arrival clock,
  // which is >= the chunk's max record timestamp (entries are written in
  // monotone timestamp order), so chunk events before the first entry at or
  // after t_range.start can only reference chunks entirely before the range
  // — exactly the chunks the old backward chain walk stopped at.
  uint64_t lo = 0;
  if (t_range.start > 0) {
    auto lower = tsr.FirstEntryAfter(t_range.start - 1);
    if (!lower.ok()) {
      return lower.status();
    }
    if (!lower.value().has_value()) {
      return Status::Ok();  // every entry is before the range
    }
    lo = *lower.value();
  }
  // Forward sweep [lo, hi): chunk-event targets are the summary addresses,
  // already oldest-first.
  for (uint64_t i = lo; i < hi; ++i) {
    auto bytes = ts_reader.Fetch(i * TimestampIndexEntry::kEncodedSize,
                                 TimestampIndexEntry::kEncodedSize);
    if (!bytes.ok()) {
      return bytes.status();
    }
    const TimestampIndexEntry e = TimestampIndexEntry::Decode(bytes.value().data());
    if (e.kind == TimestampIndexEntry::Kind::kChunk) {
      plan->addrs.push_back(e.target_addr);
    }
  }
  return Status::Ok();
}

Result<std::shared_ptr<const ChunkSummary>> Loom::LoadCandidate(const CandidatePlan& plan,
                                                                size_t c, const Snapshot& snap,
                                                                TimeRange t_range,
                                                                QueryTrace* trace) const {
  std::shared_ptr<const ChunkSummary> summary;
  if (plan.use_preloaded) {
    summary = plan.preloaded[c];
  } else {
    auto loaded = ReadSummary(plan.addrs[c], snap.chunk_tail, trace);
    if (!loaded.ok()) {
      return loaded.status();
    }
    summary = std::move(loaded.value());
  }
  const ChunkSummary& s = *summary;
  // The retention floor is re-read here — per candidate, on whichever thread
  // processes it — so a floor that advances mid-query drops exactly the
  // chunks whose record data is already gone.
  if (s.chunk_addr < record_log_->retained_floor() ||
      s.chunk_addr + s.chunk_len > snap.indexed_tail || s.max_ts < t_range.start ||
      s.min_ts > t_range.end) {
    return std::shared_ptr<const ChunkSummary>();  // filtered: not a candidate
  }
  return summary;
}

Status Loom::CollectCandidateSummaries(
    const Snapshot& snap, TimeRange t_range,
    std::vector<std::shared_ptr<const ChunkSummary>>& out, QueryTrace* trace) const {
  out.clear();
  CandidatePlan plan;
  LOOM_RETURN_IF_ERROR(PlanCandidates(snap, t_range, &plan, trace));
  for (size_t c = 0; c < plan.size(); ++c) {
    auto summary = LoadCandidate(plan, c, snap, t_range, trace);
    if (!summary.ok()) {
      return summary.status();
    }
    if (summary.value() != nullptr) {
      out.push_back(std::move(summary.value()));
    }
  }
  return Status::Ok();
}

bool Loom::CanRunParallel() const {
  // No nested parallelism: an index function or callback that re-enters the
  // engine from a pool worker runs its query serially inline.
  return query_pool_ != nullptr && !QueryThreadPool::OnWorkerThread();
}

Status Loom::ProcessAggregateCandidate(uint32_t source_id, uint32_t index_id,
                                       const IndexSnapshot& idx, TimeRange t_range,
                                       const Snapshot& snap, const CandidatePlan& plan, size_t c,
                                       ChunkPrefetcher::Job* ring, ChunkOutcome* out,
                                       QueryTrace* trace) const {
  // Take this candidate's ring slot unconditionally — pruned candidates must
  // still advance the read-ahead window or the ring would stall.
  std::optional<std::vector<uint8_t>> pre;
  if (ring != nullptr) {
    pre = ring->Take(c);
  }
  auto loaded = LoadCandidate(plan, c, snap, t_range, trace);
  if (!loaded.ok()) {
    return loaded.status();
  }
  if (loaded.value() == nullptr) {
    out->kind = ChunkOutcome::Kind::kFiltered;
    return Status::Ok();
  }
  out->summary = std::move(loaded.value());
  const ChunkSummary& s = *out->summary;
  bool has_presence = false;
  uint64_t presence_count = 0;
  uint64_t evaluated_count = 0;
  TimestampNanos src_min_ts = 0;
  TimestampNanos src_max_ts = 0;
  for (const ChunkSummary::Entry& e : s.entries) {
    if (e.source_id != source_id) {
      continue;
    }
    if (e.index_id == kPresenceIndexId) {
      has_presence = true;
      presence_count = e.stats.count;
      src_min_ts = e.stats.min_ts;
      src_max_ts = e.stats.max_ts;
    } else if (e.index_id == index_id && e.bin == kEvaluatedBin) {
      evaluated_count = e.stats.count;
    }
  }
  if (!has_presence || src_max_ts < t_range.start || src_min_ts > t_range.end) {
    out->kind = ChunkOutcome::Kind::kPruned;
    return Status::Ok();
  }
  const bool fully_covered = src_min_ts >= t_range.start && src_max_ts <= t_range.end;
  // Every source record in the chunk was seen by the index function, so the
  // bins fully describe the chunk's indexed values (§5.3). The actual bin
  // fold happens on the coordinator, in candidate order.
  const bool all_indexed = evaluated_count == presence_count;
  if (fully_covered && all_indexed) {
    out->kind = ChunkOutcome::Kind::kFolded;
    return Status::Ok();
  }
  out->kind = ChunkOutcome::Kind::kScanned;
  const IndexFunc& func = idx.func;
  const uint64_t end = std::min<uint64_t>(s.chunk_addr + s.chunk_len, snap.record_tail);
  // A prefetched buffer is trusted only when it demonstrably covers this
  // chunk: the ring's ranges were derived arithmetically before any summary
  // was decoded, so the submitted base must equal the decoded chunk_addr.
  // Anything else degrades to a miss through the scan-local cache.
  std::span<const uint8_t> preloaded;
  if (pre.has_value() && ring->range_addr(c) == s.chunk_addr && end > s.chunk_addr &&
      pre->size() >= end - s.chunk_addr) {
    preloaded = std::span<const uint8_t>(pre->data(), static_cast<size_t>(end - s.chunk_addr));
  }
  return ScanRecordRangeFor(
      s.chunk_addr, end, source_id, t_range, preloaded,
      [&](const RecordView& view) -> bool {
        std::optional<double> value = func(view.payload);
        if (value.has_value()) {
          out->values.emplace_back(*value, view.ts);
        }
        return true;
      },
      trace);
}

Status Loom::ProcessScanCandidate(uint32_t source_id, uint32_t index_id, const IndexSnapshot& idx,
                                  TimeRange t_range, ValueRange v_range, uint32_t first_bin,
                                  uint32_t last_bin, const Snapshot& snap,
                                  const CandidatePlan& plan, size_t c, ChunkPrefetcher::Job* ring,
                                  ChunkOutcome* out, QueryTrace* trace) const {
  std::optional<std::vector<uint8_t>> pre;
  if (ring != nullptr) {
    pre = ring->Take(c);
  }
  auto loaded = LoadCandidate(plan, c, snap, t_range, trace);
  if (!loaded.ok()) {
    return loaded.status();
  }
  if (loaded.value() == nullptr) {
    out->kind = ChunkOutcome::Kind::kFiltered;
    return Status::Ok();
  }
  out->summary = std::move(loaded.value());
  const ChunkSummary& s = *out->summary;
  bool has_presence = false;
  uint64_t presence_count = 0;
  uint64_t evaluated_count = 0;
  bool bin_match = false;
  TimestampNanos src_min_ts = 0;
  TimestampNanos src_max_ts = 0;
  for (const ChunkSummary::Entry& e : s.entries) {
    if (e.source_id != source_id) {
      continue;
    }
    if (e.index_id == kPresenceIndexId) {
      has_presence = true;
      presence_count = e.stats.count;
      src_min_ts = e.stats.min_ts;
      src_max_ts = e.stats.max_ts;
    } else if (e.index_id == index_id) {
      if (e.bin == kEvaluatedBin) {
        evaluated_count = e.stats.count;
      } else if (e.bin >= first_bin && e.bin <= last_bin) {
        bin_match = true;
      }
    }
  }
  if (!has_presence || src_max_ts < t_range.start || src_min_ts > t_range.end) {
    out->kind = ChunkOutcome::Kind::kPruned;
    return Status::Ok();
  }
  // Chunks holding records that predate the index definition must be
  // scanned: the bins cannot prove absence for never-evaluated records
  // (§5.3). Records the index function merely skipped are provably
  // non-matching and need no scan.
  const bool has_unindexed = evaluated_count < presence_count;
  if (!bin_match && !has_unindexed) {
    out->kind = ChunkOutcome::Kind::kPruned;
    return Status::Ok();
  }
  out->kind = ChunkOutcome::Kind::kScanned;
  const IndexFunc& func = idx.func;
  const uint64_t end = std::min<uint64_t>(s.chunk_addr + s.chunk_len, snap.record_tail);
  std::span<const uint8_t> preloaded;
  if (pre.has_value() && ring->range_addr(c) == s.chunk_addr && end > s.chunk_addr &&
      pre->size() >= end - s.chunk_addr) {
    preloaded = std::span<const uint8_t>(pre->data(), static_cast<size_t>(end - s.chunk_addr));
  }
  return ScanRecordRangeFor(
      s.chunk_addr, end, source_id, t_range, preloaded,
      [&](const RecordView& view) -> bool {
        std::optional<double> value = func(view.payload);
        if (!value.has_value() || !v_range.Contains(*value)) {
          return true;
        }
        ChunkOutcome::Match m;
        m.value = *value;
        m.ts = view.ts;
        m.addr = view.addr;
        m.payload.assign(view.payload.begin(), view.payload.end());
        out->matches.push_back(std::move(m));
        return true;
      },
      trace);
}

// --- Query operators -------------------------------------------------------------
//
// Each public operator installs a trace (the caller's, or a local one so the
// internals never branch on null), measures total latency, runs the *Impl
// body, and folds the result into the registry exactly once.

Status Loom::RawScan(uint32_t source_id, TimeRange t_range, const RecordCallback& cb,
                     QueryTrace* trace) const {
  QueryTrace local;
  QueryTrace* t = trace != nullptr ? trace : &local;
  *t = QueryTrace{};
  t->op = "raw_scan";
  t->detailed = trace != nullptr;
  const bool timed = t->detailed || options_.enable_latency_metrics;
  const uint64_t t0 = timed ? MetricsNowNanos() : 0;
  Status st = RawScanImpl(source_id, t_range, cb, t);
  if (timed) {
    t->total_nanos = MetricsNowNanos() - t0;
  }
  FoldTraceIntoMetrics(*t, m_.raw_scan_seconds);
  return st;
}

Status Loom::RawScanImpl(uint32_t source_id, TimeRange t_range, const RecordCallback& cb,
                         QueryTrace* trace) const {
  const SourceState* src = FindSource(source_id);
  if (src == nullptr) {
    return Status::NotFound("source not defined");
  }
  const Snapshot snap = TakeSnapshot(src);

  uint64_t start = snap.source_tail;
  if (options_.enable_timestamp_index && snap.ts_tail > 0) {
    TimestampIndexReader tsr(ts_log_.get(), snap.ts_tail);
    auto marker = tsr.FirstRecordMarkerAfter(source_id, t_range.end);
    if (!marker.ok()) {
      return marker.status();
    }
    if (marker.value().has_value()) {
      // All records after the marker's target have ts > t_range.end, so the
      // backward walk can start there instead of at the chain head.
      start = marker.value()->target_addr;
    }
  }
  if (start == kNullAddr) {
    return Status::Ok();
  }

  // Track whether the caller stopped the scan: archived records are only
  // emitted after the hot walk ran to completion (they are strictly older
  // than everything the walk delivered).
  bool cb_stopped = false;
  const RecordCallback hot_cb = [&](const RecordView& view) -> bool {
    if (!cb(view)) {
      cb_stopped = true;
      return false;
    }
    return true;
  };

  if (CanRunParallel()) {
    bool executed = false;
    Status st = RawScanParallel(source_id, t_range, snap, start, hot_cb, trace, &executed);
    if (!st.ok()) {
      return st;
    }
    if (executed) {
      return cb_stopped ? Status::Ok() : RawScanArchiveTier(source_id, t_range, cb, trace);
    }
    // Not enough chain segments to be worth fanning out: fall through to the
    // serial walk.
  }

  const uint64_t scan_t0 = trace->detailed ? MetricsNowNanos() : 0;
  // Two windows: the payload fetches of the emission phase and the header
  // walk of the next batch alternate between nearby-but-distinct spans.
  CachedLogReader reader(record_log_.get(), snap.record_tail, kScanWindow, /*max_windows=*/2);
  // The chain walk batches headers, runs the vectorized time filter over the
  // batch, then emits matches in chain (newest-first) order with the same
  // per-record accounting the single-step walk produced: every header
  // fetched is examined, payload bytes count only for matches, and the
  // first record with ts < t_range.start terminates the walk (it is
  // examined, never delivered).
  DecodedBatch batch;
  std::vector<uint64_t> mask;
  uint64_t addr = start;
  bool done = false;
  Status deferred;  // hard read error: surfaces after the collected prefix
  while (!done && addr != kNullAddr) {
    batch.Clear();
    bool stop_after = false;
    while (batch.size() < kChainWalkBatch && addr != kNullAddr) {
      if (addr < record_log_->retained_floor()) {
        stop_after = true;  // the chain continues into dropped territory
        break;
      }
      auto head_bytes = reader.Fetch(addr, kRecordHeaderSize);
      if (!head_bytes.ok()) {
        if (head_bytes.status().code() == StatusCode::kOutOfRange) {
          stop_after = true;  // retention advanced mid-walk
        } else {
          deferred = head_bytes.status();
          stop_after = true;
        }
        break;
      }
      const RecordHeader header = RecordHeader::Decode(head_bytes.value().data());
      batch.addrs.push_back(addr);
      batch.source_ids.push_back(header.source_id);
      batch.payload_lens.push_back(header.payload_len);
      batch.timestamps.push_back(header.ts);
      addr = header.prev_addr;
      if (header.ts < t_range.start) {
        stop_after = true;
        break;
      }
    }
    const size_t n = batch.size();
    if (n > 0) {
      mask.assign(MaskWords(n), 0);
      kernels_->filter_source_time(batch.source_ids.data(), batch.timestamps.data(), n,
                                   source_id, t_range.start, t_range.end, mask.data());
      for (size_t i = 0; i < n; ++i) {
        ++trace->records_examined;
        trace->bytes_read += kRecordHeaderSize;
        if (((mask[i >> 6] >> (i & 63)) & 1) == 0) {
          continue;
        }
        auto payload = reader.Fetch(batch.addrs[i] + kRecordHeaderSize, batch.payload_lens[i]);
        if (!payload.ok()) {
          return payload.status();
        }
        trace->bytes_read += batch.payload_lens[i];
        RecordView view;
        view.source_id = batch.source_ids[i];
        view.ts = batch.timestamps[i];
        view.addr = batch.addrs[i];
        view.payload = payload.value();
        ++trace->records_matched;
        if (!hot_cb(view)) {
          done = true;
          break;
        }
      }
    }
    // A collection-phase read error surfaces only after the records ahead of
    // it were delivered; if the callback already stopped, the interleaved
    // walk would never have reached the error, so swallow it.
    if (!deferred.ok() && !done) {
      if (trace->detailed) {
        trace->scan_nanos += MetricsNowNanos() - scan_t0;
      }
      return deferred;
    }
    if (stop_after) {
      break;
    }
  }
  if (trace->detailed) {
    trace->scan_nanos += MetricsNowNanos() - scan_t0;
  }
  return cb_stopped ? Status::Ok() : RawScanArchiveTier(source_id, t_range, cb, trace);
}

Status Loom::RawScanParallel(uint32_t source_id, TimeRange t_range, const Snapshot& snap,
                             uint64_t start, const RecordCallback& cb, QueryTrace* trace,
                             bool* executed) const {
  *executed = false;
  if (!options_.enable_timestamp_index || snap.ts_tail == 0) {
    return Status::Ok();
  }
  // Partition the backward chain at record-marker targets: markers land every
  // ts_marker_period records per source, so each [bounds[j], bounds[j+1])
  // address segment is an independently walkable slice of the chain whose
  // records are all newer than the next segment's.
  TimestampIndexReader tsr(ts_log_.get(), snap.ts_tail);
  auto marker = tsr.LastRecordMarkerAtOrBefore(source_id, t_range.end);
  if (!marker.ok()) {
    return marker.status();
  }
  if (!marker.value().has_value()) {
    return Status::Ok();
  }
  std::vector<uint64_t> bounds;
  bounds.push_back(start);
  CachedLogReader ts_reader(ts_log_.get(), snap.ts_tail, kScanWindow);
  TimestampIndexEntry m = *marker.value();
  const uint64_t floor_hint = record_log_->retained_floor();
  for (;;) {
    if (m.ts < t_range.start || m.target_addr < floor_hint) {
      break;  // the serial walk would stop inside the current last segment
    }
    if (m.target_addr < bounds.back()) {
      bounds.push_back(m.target_addr);
    }
    if (m.prev_addr == kNullAddr) {
      break;
    }
    auto bytes = ts_reader.Fetch(m.prev_addr, TimestampIndexEntry::kEncodedSize);
    if (!bytes.ok()) {
      return bytes.status();
    }
    m = TimestampIndexEntry::Decode(bytes.value().data());
  }
  if (bounds.size() < kMinParallelSegments) {
    return Status::Ok();
  }

  struct Segment {
    uint64_t begin = 0;
    uint64_t end = kNullAddr;  // exclusive; kNullAddr = walk to the chain tail
  };
  std::vector<Segment> segs(bounds.size());
  for (size_t j = 0; j < bounds.size(); ++j) {
    segs[j].begin = bounds[j];
    segs[j].end = j + 1 < bounds.size() ? bounds[j + 1] : kNullAddr;
  }
  struct SegResult {
    std::vector<ChunkOutcome::Match> matches;  // value unused on this path
    bool hit_stop = false;  // the serial walk would have terminated here
  };
  std::vector<SegResult> results(segs.size());

  const std::vector<std::pair<size_t, size_t>> morsels =
      MakeMorsels(segs.size(), query_pool_->num_threads());
  std::vector<Status> morsel_status(morsels.size());
  std::vector<QueryTrace> morsel_traces(morsels.size());
  for (QueryTrace& mt : morsel_traces) {
    mt.detailed = trace->detailed;
  }
  std::atomic<bool> abort{false};
  Status failed;
  const size_t window = std::max<size_t>(2 * query_pool_->num_threads(), 4);
  const QueryThreadPool::RunStats stats = query_pool_->RunOrdered(
      morsels.size(), window,
      [&](size_t mi) {
        if (abort.load(std::memory_order_relaxed)) {
          return;  // a sibling morsel failed; the query returns its error
        }
        QueryTrace* mt = &morsel_traces[mi];
        const uint64_t scan_t0 = mt->detailed ? MetricsNowNanos() : 0;
        CachedLogReader reader(record_log_.get(), snap.record_tail, kScanWindow,
                               /*max_windows=*/2);
        DecodedBatch batch;
        std::vector<uint64_t> mask;
        const auto [sb, se] = morsels[mi];
        for (size_t s = sb; s < se; ++s) {
          SegResult& r = results[s];
          uint64_t addr = segs[s].begin;
          bool seg_done = false;
          // Same batched walk as the serial path: collect headers along the
          // chain, vector-filter by time, then account and buffer matches in
          // chain order. Each segment additionally stops at its exclusive
          // end address.
          while (!seg_done && addr != kNullAddr && addr != segs[s].end) {
            batch.Clear();
            while (batch.size() < kChainWalkBatch && addr != kNullAddr &&
                   addr != segs[s].end) {
              if (addr < record_log_->retained_floor()) {
                r.hit_stop = true;  // chain continues into dropped territory
                seg_done = true;
                break;
              }
              auto head_bytes = reader.Fetch(addr, kRecordHeaderSize);
              if (!head_bytes.ok()) {
                if (head_bytes.status().code() == StatusCode::kOutOfRange) {
                  r.hit_stop = true;  // retention advanced mid-walk
                } else {
                  morsel_status[mi] = head_bytes.status();
                  abort.store(true, std::memory_order_relaxed);
                }
                seg_done = true;
                break;
              }
              const RecordHeader header = RecordHeader::Decode(head_bytes.value().data());
              batch.addrs.push_back(addr);
              batch.source_ids.push_back(header.source_id);
              batch.payload_lens.push_back(header.payload_len);
              batch.timestamps.push_back(header.ts);
              addr = header.prev_addr;
              if (header.ts < t_range.start) {
                r.hit_stop = true;
                seg_done = true;
                break;
              }
            }
            const size_t n = batch.size();
            if (n > 0) {
              mask.assign(MaskWords(n), 0);
              kernels_->filter_source_time(batch.source_ids.data(), batch.timestamps.data(),
                                           n, source_id, t_range.start, t_range.end,
                                           mask.data());
              for (size_t i = 0; i < n; ++i) {
                ++mt->records_examined;
                mt->bytes_read += kRecordHeaderSize;
                if (((mask[i >> 6] >> (i & 63)) & 1) == 0) {
                  continue;
                }
                auto payload =
                    reader.Fetch(batch.addrs[i] + kRecordHeaderSize, batch.payload_lens[i]);
                if (!payload.ok()) {
                  morsel_status[mi] = payload.status();
                  abort.store(true, std::memory_order_relaxed);
                  seg_done = true;
                  break;
                }
                mt->bytes_read += batch.payload_lens[i];
                ChunkOutcome::Match match;
                match.ts = batch.timestamps[i];
                match.addr = batch.addrs[i];
                match.payload.assign(payload.value().begin(), payload.value().end());
                r.matches.push_back(std::move(match));
              }
            }
          }
          if (r.hit_stop || !morsel_status[mi].ok()) {
            break;  // remaining segments are past the serial stop / the error
          }
        }
        if (mt->detailed) {
          mt->scan_nanos += MetricsNowNanos() - scan_t0;
        }
      },
      [&](size_t mi) -> bool {
        // Emit this morsel's buffered records newest-first; the across-morsel
        // consume order makes the overall delivery identical to the serial
        // backward walk. A worker error surfaces only after the records it
        // buffered before failing are delivered — the exact serial prefix.
        const auto [sb, se] = morsels[mi];
        for (size_t s = sb; s < se; ++s) {
          SegResult& r = results[s];
          for (const ChunkOutcome::Match& match : r.matches) {
            RecordView view;
            view.source_id = source_id;
            view.ts = match.ts;
            view.addr = match.addr;
            view.payload = std::span<const uint8_t>(match.payload);
            ++trace->records_matched;
            if (!cb(view)) {
              return false;
            }
          }
          const bool stop = r.hit_stop;
          r = SegResult{};  // free buffered payloads eagerly
          if (stop) {
            return false;
          }
        }
        if (!morsel_status[mi].ok()) {
          failed = morsel_status[mi];
          return false;
        }
        return true;
      });
  trace->parallel_morsels += stats.morsels;
  trace->parallel_workers += stats.workers_used;
  for (const QueryTrace& mt : morsel_traces) {
    trace->AbsorbWorker(mt);
  }
  *executed = true;
  return failed;
}

Status Loom::IndexedScan(uint32_t source_id, uint32_t index_id, TimeRange t_range,
                         ValueRange v_range, const RecordCallback& cb,
                         QueryTrace* trace) const {
  return IndexedScanValues(source_id, index_id, t_range, v_range,
                           [&cb](double, const RecordView& view) { return cb(view); }, trace);
}

Status Loom::IndexedScanValues(uint32_t source_id, uint32_t index_id, TimeRange t_range,
                               ValueRange v_range, const ValueCallback& cb,
                               QueryTrace* trace) const {
  QueryTrace local;
  QueryTrace* t = trace != nullptr ? trace : &local;
  *t = QueryTrace{};
  t->op = "indexed_scan";
  t->detailed = trace != nullptr;
  const bool timed = t->detailed || options_.enable_latency_metrics;
  const uint64_t t0 = timed ? MetricsNowNanos() : 0;
  Status st = IndexedScanValuesImpl(source_id, index_id, t_range, v_range, cb, t);
  if (timed) {
    t->total_nanos = MetricsNowNanos() - t0;
  }
  FoldTraceIntoMetrics(*t, m_.indexed_scan_seconds);
  return st;
}

Status Loom::IndexedScanValuesImpl(uint32_t source_id, uint32_t index_id, TimeRange t_range,
                                   ValueRange v_range, const ValueCallback& cb,
                                   QueryTrace* trace) const {
  auto idx = GetIndexSnapshot(index_id);
  if (!idx.ok()) {
    return idx.status();
  }
  if (idx.value().source_id != source_id) {
    return Status::InvalidArgument("index does not cover source");
  }
  const SourceState* src = FindSource(source_id);
  if (src == nullptr) {
    return Status::NotFound("source not defined");
  }
  const HistogramSpec& spec = idx.value().spec;
  const IndexFunc& func = idx.value().func;
  const Snapshot snap = TakeSnapshot(src);
  const auto [first_bin, last_bin] = spec.BinsOverlapping(v_range.lo, v_range.hi);

  bool stopped = false;
  // The index function runs once per candidate record; its value is handed
  // to the callback so composed queries (drill-downs, distributed
  // percentile) never re-evaluate it.
  auto emit_matches = [&](const RecordView& view) -> bool {
    if (view.source_id != source_id || !t_range.Contains(view.ts)) {
      return true;
    }
    std::optional<double> value = func(view.payload);
    if (!value.has_value() || !v_range.Contains(*value)) {
      return true;
    }
    ++trace->records_matched;
    if (!cb(*value, view)) {
      stopped = true;
      return false;
    }
    return true;
  };

  if (options_.enable_chunk_index) {
    CandidatePlan plan;
    LOOM_RETURN_IF_ERROR(PlanCandidates(snap, t_range, &plan, trace));
    const size_t n = plan.size();
    const std::unique_ptr<ChunkPrefetcher::Job> ring = SubmitCandidatePrefetch(plan, snap);

    // Archive tier first: demoted blocks hold strictly older data than any
    // hot chunk, so emitting them first preserves the operator's global
    // oldest-first order. Zone maps prune exactly like hot summaries.
    for (const ArchiveCandidate& a :
         PlanArchiveCandidates(record_log_->retained_floor(), t_range, trace)) {
      ++trace->chunks_considered;
      ++trace->tier_chunks_considered;
      const ZoneFacts f = CollectZoneFacts(*a.summary, source_id, index_id, first_bin, last_bin);
      const bool has_unindexed = f.evaluated_count < f.presence_count;
      if (!f.has_presence || f.max_ts < t_range.start || f.min_ts > t_range.end ||
          (!f.bin_match && !has_unindexed)) {
        ++trace->chunks_pruned;
        ++trace->tier_chunks_pruned;
        continue;
      }
      ++trace->chunks_scanned;
      ++trace->tier_chunks_scanned;
      LOOM_RETURN_IF_ERROR(ScanArchiveBlockFor(
          a, source_id, t_range,
          [&](const RecordView& view) -> bool {
            std::optional<double> value = func(view.payload);
            if (!value.has_value() || !v_range.Contains(*value)) {
              return true;
            }
            ++trace->records_matched;
            if (!cb(*value, view)) {
              stopped = true;
              return false;
            }
            return true;
          },
          trace));
      if (stopped) {
        return Status::Ok();
      }
    }

    // Emits one processed candidate's buffered matches. Always runs on the
    // calling thread, strictly in candidate (= timestamp) order, so the
    // caller observes the exact serial delivery sequence. Returns false when
    // the callback stopped the scan.
    auto emit_outcome = [&](ChunkOutcome& o) -> bool {
      if (o.kind == ChunkOutcome::Kind::kFiltered) {
        return true;  // not a candidate after per-worker filtering
      }
      ++trace->chunks_considered;
      if (o.kind != ChunkOutcome::Kind::kScanned) {
        ++trace->chunks_pruned;
        return true;
      }
      ++trace->chunks_scanned;
      for (const ChunkOutcome::Match& m : o.matches) {
        RecordView view;
        view.source_id = source_id;
        view.ts = m.ts;
        view.addr = m.addr;
        view.payload = std::span<const uint8_t>(m.payload);
        ++trace->records_matched;
        if (!cb(m.value, view)) {
          stopped = true;
          return false;
        }
      }
      return true;
    };

    if (CanRunParallel() && n >= kMinParallelCandidates) {
      const std::vector<std::pair<size_t, size_t>> morsels =
          MakeMorsels(n, query_pool_->num_threads());
      std::vector<ChunkOutcome> outcomes(n);
      std::vector<Status> morsel_status(morsels.size());
      std::vector<QueryTrace> morsel_traces(morsels.size());
      for (QueryTrace& mt : morsel_traces) {
        mt.detailed = trace->detailed;
      }
      std::atomic<bool> abort{false};
      Status failed;
      // Producers may run at most `window` morsels ahead of in-order
      // emission, bounding buffered-match memory.
      const size_t window = std::max<size_t>(2 * query_pool_->num_threads(), 4);
      const QueryThreadPool::RunStats stats = query_pool_->RunOrdered(
          morsels.size(), window,
          [&](size_t mi) {
            if (abort.load(std::memory_order_relaxed)) {
              return;  // a sibling morsel failed; the query returns its error
            }
            const auto [begin, end] = morsels[mi];
            for (size_t c = begin; c < end; ++c) {
              Status st =
                  ProcessScanCandidate(source_id, index_id, idx.value(), t_range, v_range,
                                       first_bin, last_bin, snap, plan, c, ring.get(),
                                       &outcomes[c], &morsel_traces[mi]);
              if (!st.ok()) {
                morsel_status[mi] = st;
                abort.store(true, std::memory_order_relaxed);
                return;
              }
            }
          },
          [&](size_t mi) -> bool {
            if (!morsel_status[mi].ok()) {
              failed = morsel_status[mi];
              return false;
            }
            const auto [begin, end] = morsels[mi];
            bool keep_going = true;
            for (size_t c = begin; c < end && keep_going; ++c) {
              keep_going = emit_outcome(outcomes[c]);
            }
            for (size_t c = begin; c < end; ++c) {
              outcomes[c] = ChunkOutcome{};  // free buffered matches eagerly
            }
            return keep_going;
          });
      trace->parallel_morsels += stats.morsels;
      trace->parallel_workers += stats.workers_used;
      for (const QueryTrace& mt : morsel_traces) {
        trace->AbsorbWorker(mt);
      }
      if (!failed.ok()) {
        return failed;
      }
      if (stopped) {
        return Status::Ok();
      }
    } else {
      ChunkOutcome o;
      for (size_t c = 0; c < n; ++c) {
        o = ChunkOutcome{};
        LOOM_RETURN_IF_ERROR(ProcessScanCandidate(source_id, index_id, idx.value(), t_range,
                                                  v_range, first_bin, last_bin, snap, plan, c,
                                                  ring.get(), &o, trace));
        if (!emit_outcome(o)) {
          return Status::Ok();
        }
      }
    }
    // Active (not yet summarized) region: the source/time filter runs
    // vectorized over each decoded batch instead of inside the callback.
    LOOM_RETURN_IF_ERROR(ScanRecordRangeFor(
        snap.indexed_tail, snap.record_tail, source_id, t_range, {},
        [&](const RecordView& view) -> bool {
          std::optional<double> value = func(view.payload);
          if (!value.has_value() || !v_range.Contains(*value)) {
            return true;
          }
          ++trace->records_matched;
          if (!cb(*value, view)) {
            stopped = true;
            return false;
          }
          return true;
        },
        trace));
    return Status::Ok();
  }

  if (options_.enable_timestamp_index && snap.ts_tail > 0) {
    // Timestamp-index-only mode: locate the scan start by time, then scan
    // every record in the window.
    TimestampIndexReader tsr(ts_log_.get(), snap.ts_tail);
    uint64_t start_addr = 0;
    auto pos = tsr.LastEntryAtOrBefore(t_range.start == 0 ? 0 : t_range.start - 1);
    if (!pos.ok()) {
      return pos.status();
    }
    if (pos.value().has_value()) {
      auto e = tsr.ReadIndex(*pos.value());
      if (!e.ok()) {
        return e.status();
      }
      if (e.value().kind == TimestampIndexEntry::Kind::kRecord) {
        start_addr = e.value().target_addr;
      }
    }
    bool past_range = false;
    LOOM_RETURN_IF_ERROR(ScanRecordRange(
        start_addr, snap.record_tail,
        [&](const RecordView& view) -> bool {
          if (view.ts > t_range.end) {
            past_range = true;
            return false;
          }
          return emit_matches(view);
        },
        trace));
    (void)past_range;
    return Status::Ok();
  }

  // No indexes at all: backward chain walk with filtering (newest-first).
  // The chain walk counts every time-matched record as matched; overwrite
  // with the value-filtered count this query actually delivered.
  uint64_t delivered = 0;
  Status st = RawScanImpl(
      source_id, t_range,
      [&](const RecordView& view) -> bool {
        std::optional<double> value = func(view.payload);
        if (!value.has_value() || !v_range.Contains(*value)) {
          return true;
        }
        ++delivered;
        return cb(*value, view);
      },
      trace);
  trace->records_matched = delivered;
  return st;
}

Status Loom::AccumulateIndexed(uint32_t source_id, uint32_t index_id, const IndexSnapshot& idx,
                               TimeRange t_range, BinAccumulation* out,
                               QueryTrace* trace) const {
  const SourceState* src = FindSource(source_id);
  if (src == nullptr) {
    return Status::NotFound("source not defined");
  }
  const HistogramSpec& spec = idx.spec;
  const IndexFunc& func = idx.func;
  out->snap = TakeSnapshot(src);
  const Snapshot& snap = out->snap;
  BinStats& merged = out->merged;
  out->bin_counts.assign(spec.num_bins(), 0);
  std::vector<uint64_t>& bin_counts = out->bin_counts;
  std::vector<double>& loose_values = out->loose_values;

  // Source/time filtering happens vectorized inside the batched scan; only
  // matching records reach this callback.
  auto scan_accumulate = [&](const RecordView& view) -> bool {
    std::optional<double> value = func(view.payload);
    if (!value.has_value()) {
      return true;
    }
    merged.Update(*value, view.ts);
    bin_counts[spec.BinOf(*value)]++;
    loose_values.push_back(*value);
    return true;
  };

  std::vector<BinAccumulation::MergedChunk>& fully_merged = out->fully_merged;
  std::vector<std::shared_ptr<const ChunkSummary>>& candidates = out->candidates;

  if (options_.enable_chunk_index) {
    CandidatePlan plan;
    LOOM_RETURN_IF_ERROR(PlanCandidates(snap, t_range, &plan, trace));
    const size_t n = plan.size();
    const std::unique_ptr<ChunkPrefetcher::Job> ring = SubmitCandidatePrefetch(plan, snap);
    std::vector<double> scan_vals;
    std::vector<uint32_t> scan_bins;

    // Archive tier first: demoted blocks are strictly older than any hot
    // chunk, so folding them first keeps the accumulation in global time
    // order — bit-identical to what the same data produced before demotion.
    std::vector<ArchiveCandidate>& archived = out->archive_candidates;
    archived = PlanArchiveCandidates(record_log_->retained_floor(), t_range, trace);
    for (size_t ai = 0; ai < archived.size(); ++ai) {
      const ChunkSummary& s = *archived[ai].summary;
      ++trace->chunks_considered;
      ++trace->tier_chunks_considered;
      const ZoneFacts f = CollectZoneFacts(s, source_id, index_id, 1, 0);
      if (!f.has_presence || f.max_ts < t_range.start || f.min_ts > t_range.end) {
        ++trace->chunks_pruned;
        ++trace->tier_chunks_pruned;
        continue;
      }
      const bool fully_covered = f.min_ts >= t_range.start && f.max_ts <= t_range.end;
      if (fully_covered && f.evaluated_count == f.presence_count) {
        for (const ChunkSummary::Entry& e : s.entries) {
          if (e.source_id == source_id && e.index_id == index_id && e.bin != kEvaluatedBin) {
            merged.Merge(e.stats);
            bin_counts[e.bin] += e.stats.count;
          }
        }
        fully_merged.push_back({&s, static_cast<int>(ai)});
        ++trace->chunks_pruned;
        ++trace->chunks_summary_folded;
        ++trace->tier_chunks_pruned;
        ++trace->tier_chunks_summary_folded;
        continue;
      }
      ++trace->chunks_scanned;
      ++trace->tier_chunks_scanned;
      // Same collect-then-batch-classify shape as the hot scanned path, so
      // bin assignment stays bit-exact across tiers.
      std::vector<std::pair<double, TimestampNanos>> vals;
      LOOM_RETURN_IF_ERROR(ScanArchiveBlockFor(
          archived[ai], source_id, t_range,
          [&](const RecordView& view) -> bool {
            std::optional<double> value = func(view.payload);
            if (value.has_value()) {
              vals.emplace_back(*value, view.ts);
            }
            return true;
          },
          trace));
      scan_vals.clear();
      for (const auto& [value, ts] : vals) {
        scan_vals.push_back(value);
      }
      scan_bins.resize(scan_vals.size());
      spec.ClassifyBatch(*kernels_, scan_vals.data(), scan_vals.size(), scan_bins.data());
      for (size_t i = 0; i < vals.size(); ++i) {
        merged.Update(vals[i].first, vals[i].second);
        bin_counts[scan_bins[i]]++;
        loose_values.push_back(vals[i].first);
      }
    }

    // Folds one processed outcome into the accumulation. Always runs on the
    // coordinator, strictly in candidate (= log) order: partial aggregates
    // combine in exactly the serial sequence, so results are byte-identical
    // to serial execution, double non-associativity included.
    auto merge_outcome = [&](ChunkOutcome& o) {
      switch (o.kind) {
        case ChunkOutcome::Kind::kFiltered:
          break;  // not a candidate after per-worker filtering
        case ChunkOutcome::Kind::kPruned:
          ++trace->chunks_considered;
          ++trace->chunks_pruned;
          break;
        case ChunkOutcome::Kind::kFolded:
          ++trace->chunks_considered;
          for (const ChunkSummary::Entry& e : o.summary->entries) {
            if (e.source_id == source_id && e.index_id == index_id && e.bin != kEvaluatedBin) {
              merged.Merge(e.stats);
              bin_counts[e.bin] += e.stats.count;
            }
          }
          candidates.push_back(o.summary);
          fully_merged.push_back({candidates.back().get(), -1});
          // Answered from summary bins alone: pruned from record reads. The
          // percentile path may still rescan some of these in stage 2, which
          // reclassifies them (see IndexedAggregateImpl).
          ++trace->chunks_pruned;
          ++trace->chunks_summary_folded;
          break;
        case ChunkOutcome::Kind::kScanned: {
          ++trace->chunks_considered;
          ++trace->chunks_scanned;
          // Classify the whole chunk's values in one kernel pass (bit-exact
          // with per-value BinOf), then fold in log order.
          scan_vals.clear();
          for (const auto& [value, ts] : o.values) {
            scan_vals.push_back(value);
          }
          scan_bins.resize(scan_vals.size());
          spec.ClassifyBatch(*kernels_, scan_vals.data(), scan_vals.size(), scan_bins.data());
          for (size_t i = 0; i < o.values.size(); ++i) {
            merged.Update(o.values[i].first, o.values[i].second);
            bin_counts[scan_bins[i]]++;
            loose_values.push_back(o.values[i].first);
          }
          break;
        }
      }
    };

    if (CanRunParallel() && n >= kMinParallelCandidates) {
      const std::vector<std::pair<size_t, size_t>> morsels =
          MakeMorsels(n, query_pool_->num_threads());
      std::vector<ChunkOutcome> outcomes(n);
      std::vector<Status> morsel_status(morsels.size());
      std::vector<QueryTrace> morsel_traces(morsels.size());
      for (QueryTrace& mt : morsel_traces) {
        mt.detailed = trace->detailed;
      }
      std::atomic<bool> abort{false};
      const QueryThreadPool::RunStats stats = query_pool_->Run(morsels.size(), [&](size_t mi) {
        if (abort.load(std::memory_order_relaxed)) {
          return;  // a sibling morsel failed; the query returns its error
        }
        const auto [begin, end] = morsels[mi];
        for (size_t c = begin; c < end; ++c) {
          Status st = ProcessAggregateCandidate(source_id, index_id, idx, t_range, snap, plan, c,
                                                ring.get(), &outcomes[c], &morsel_traces[mi]);
          if (!st.ok()) {
            morsel_status[mi] = st;
            abort.store(true, std::memory_order_relaxed);
            return;
          }
        }
      });
      trace->parallel_morsels += stats.morsels;
      trace->parallel_workers += stats.workers_used;
      for (const QueryTrace& mt : morsel_traces) {
        trace->AbsorbWorker(mt);
      }
      for (const Status& st : morsel_status) {
        if (!st.ok()) {
          return st;
        }
      }
      const bool timed = trace->detailed || options_.enable_latency_metrics;
      const uint64_t merge_t0 = timed ? MetricsNowNanos() : 0;
      for (ChunkOutcome& o : outcomes) {
        merge_outcome(o);
      }
      if (timed) {
        trace->merge_nanos += MetricsNowNanos() - merge_t0;
      }
    } else {
      // Serial: process + merge one candidate at a time, keeping memory
      // bounded by a single chunk's matches as before.
      ChunkOutcome o;
      for (size_t c = 0; c < n; ++c) {
        o = ChunkOutcome{};
        LOOM_RETURN_IF_ERROR(ProcessAggregateCandidate(source_id, index_id, idx, t_range, snap,
                                                       plan, c, ring.get(), &o, trace));
        merge_outcome(o);
      }
    }
    LOOM_RETURN_IF_ERROR(ScanRecordRangeFor(snap.indexed_tail, snap.record_tail, source_id,
                                            t_range, {}, scan_accumulate, trace));
  } else {
    // Ablation modes: aggregate by scanning, bounded by the timestamp index
    // where available. Goes through the Impl so this query's trace keeps
    // accumulating instead of folding twice into the registry.
    LOOM_RETURN_IF_ERROR(IndexedScanValuesImpl(
        source_id, index_id, t_range,
        ValueRange{-std::numeric_limits<double>::infinity(),
                   std::numeric_limits<double>::infinity()},
        [&](double value, const RecordView& view) -> bool {
          merged.Update(value, view.ts);
          bin_counts[spec.BinOf(value)]++;
          loose_values.push_back(value);
          return true;
        },
        trace));
  }
  return Status::Ok();
}

Result<uint64_t> Loom::CountRecords(uint32_t source_id, TimeRange t_range,
                                    QueryTrace* trace) const {
  QueryTrace local;
  QueryTrace* t = trace != nullptr ? trace : &local;
  *t = QueryTrace{};
  t->op = "count_records";
  t->detailed = trace != nullptr;
  const bool timed = t->detailed || options_.enable_latency_metrics;
  const uint64_t t0 = timed ? MetricsNowNanos() : 0;
  Result<uint64_t> result = CountRecordsImpl(source_id, t_range, t);
  if (timed) {
    t->total_nanos = MetricsNowNanos() - t0;
  }
  FoldTraceIntoMetrics(*t, m_.count_seconds);
  return result;
}

Result<uint64_t> Loom::CountRecordsImpl(uint32_t source_id, TimeRange t_range,
                                        QueryTrace* trace) const {
  const SourceState* src = FindSource(source_id);
  if (src == nullptr) {
    return Status::NotFound("source not defined");
  }
  const Snapshot snap = TakeSnapshot(src);
  uint64_t count = 0;
  // Invoked only for records passing the vectorized source/time filter.
  auto count_scan = [&](const RecordView&) -> bool {
    ++count;
    return true;
  };
  if (!options_.enable_chunk_index) {
    // Ablation fallback: a raw chain walk bounded by the time range.
    Status st = RawScanImpl(
        source_id, t_range,
        [&](const RecordView&) {
          ++count;
          return true;
        },
        trace);
    if (!st.ok()) {
      return st;
    }
    return count;
  }
  std::vector<std::shared_ptr<const ChunkSummary>> candidates;
  LOOM_RETURN_IF_ERROR(CollectCandidateSummaries(snap, t_range, candidates, trace));
  // Archive tier: fully-covered demoted blocks answer straight from their
  // zone maps; partially-covered ones decompress and count.
  for (const ArchiveCandidate& a :
       PlanArchiveCandidates(record_log_->retained_floor(), t_range, trace)) {
    ++trace->chunks_considered;
    ++trace->tier_chunks_considered;
    const ZoneFacts f = CollectZoneFacts(*a.summary, source_id, kPresenceIndexId, 1, 0);
    if (!f.has_presence || f.max_ts < t_range.start || f.min_ts > t_range.end) {
      ++trace->chunks_pruned;
      ++trace->tier_chunks_pruned;
      continue;
    }
    if (f.min_ts >= t_range.start && f.max_ts <= t_range.end) {
      count += f.presence_count;
      ++trace->chunks_pruned;
      ++trace->chunks_summary_folded;
      ++trace->tier_chunks_pruned;
      ++trace->tier_chunks_summary_folded;
      continue;
    }
    ++trace->chunks_scanned;
    ++trace->tier_chunks_scanned;
    LOOM_RETURN_IF_ERROR(ScanArchiveBlockFor(a, source_id, t_range, count_scan, trace));
  }
  for (const auto& candidate : candidates) {
    const ChunkSummary& s = *candidate;
    ++trace->chunks_considered;
    const ChunkSummary::Entry* presence = nullptr;
    for (const ChunkSummary::Entry& e : s.entries) {
      if (e.source_id == source_id && e.index_id == kPresenceIndexId) {
        presence = &e;
        break;
      }
    }
    if (presence == nullptr || presence->stats.max_ts < t_range.start ||
        presence->stats.min_ts > t_range.end) {
      ++trace->chunks_pruned;
      continue;
    }
    if (presence->stats.min_ts >= t_range.start && presence->stats.max_ts <= t_range.end) {
      count += presence->stats.count;  // fully covered: summary answers
      ++trace->chunks_pruned;
      ++trace->chunks_summary_folded;
    } else {
      ++trace->chunks_scanned;
      const uint64_t end = std::min<uint64_t>(s.chunk_addr + s.chunk_len, snap.record_tail);
      LOOM_RETURN_IF_ERROR(
          ScanRecordRangeFor(s.chunk_addr, end, source_id, t_range, {}, count_scan, trace));
    }
  }
  LOOM_RETURN_IF_ERROR(ScanRecordRangeFor(snap.indexed_tail, snap.record_tail, source_id,
                                          t_range, {}, count_scan, trace));
  return count;
}

Result<std::vector<uint64_t>> Loom::IndexedHistogram(uint32_t source_id, uint32_t index_id,
                                                     TimeRange t_range,
                                                     QueryTrace* trace) const {
  QueryTrace local;
  QueryTrace* t = trace != nullptr ? trace : &local;
  *t = QueryTrace{};
  t->op = "indexed_histogram";
  t->detailed = trace != nullptr;
  const bool timed = t->detailed || options_.enable_latency_metrics;
  const uint64_t t0 = timed ? MetricsNowNanos() : 0;
  Result<std::vector<uint64_t>> result = [&]() -> Result<std::vector<uint64_t>> {
    auto idx = GetIndexSnapshot(index_id);
    if (!idx.ok()) {
      return idx.status();
    }
    if (idx.value().source_id != source_id) {
      return Status::InvalidArgument("index does not cover source");
    }
    BinAccumulation acc;
    LOOM_RETURN_IF_ERROR(AccumulateIndexed(source_id, index_id, idx.value(), t_range, &acc, t));
    return std::move(acc.bin_counts);
  }();
  if (timed) {
    t->total_nanos = MetricsNowNanos() - t0;
  }
  FoldTraceIntoMetrics(*t, m_.histogram_seconds);
  return result;
}

Result<double> Loom::IndexedAggregate(uint32_t source_id, uint32_t index_id, TimeRange t_range,
                                      AggregateMethod method, double percentile,
                                      QueryTrace* trace) const {
  QueryTrace local;
  QueryTrace* t = trace != nullptr ? trace : &local;
  *t = QueryTrace{};
  t->op = "indexed_aggregate";
  t->detailed = trace != nullptr;
  const bool timed = t->detailed || options_.enable_latency_metrics;
  const uint64_t t0 = timed ? MetricsNowNanos() : 0;
  Result<double> result =
      IndexedAggregateImpl(source_id, index_id, t_range, method, percentile, t);
  if (timed) {
    t->total_nanos = MetricsNowNanos() - t0;
  }
  FoldTraceIntoMetrics(*t, m_.aggregate_seconds);
  return result;
}

Result<double> Loom::IndexedAggregateImpl(uint32_t source_id, uint32_t index_id,
                                          TimeRange t_range, AggregateMethod method,
                                          double percentile, QueryTrace* trace) const {
  auto idx = GetIndexSnapshot(index_id);
  if (!idx.ok()) {
    return idx.status();
  }
  if (idx.value().source_id != source_id) {
    return Status::InvalidArgument("index does not cover source");
  }
  if (method == AggregateMethod::kPercentile && (percentile < 0.0 || percentile > 100.0)) {
    return Status::InvalidArgument("percentile must be in [0, 100]");
  }
  const HistogramSpec& spec = idx.value().spec;
  const IndexFunc& func = idx.value().func;
  BinAccumulation acc;
  LOOM_RETURN_IF_ERROR(AccumulateIndexed(source_id, index_id, idx.value(), t_range, &acc, trace));
  const Snapshot& snap = acc.snap;
  BinStats& merged = acc.merged;
  std::vector<uint64_t>& bin_counts = acc.bin_counts;
  std::vector<double>& loose_values = acc.loose_values;
  std::vector<BinAccumulation::MergedChunk>& fully_merged = acc.fully_merged;

  switch (method) {
    case AggregateMethod::kCount:
      return static_cast<double>(merged.count);
    case AggregateMethod::kSum:
      return merged.sum;
    case AggregateMethod::kMin:
      if (merged.count == 0) {
        return Status::NotFound("no data in range");
      }
      return merged.min;
    case AggregateMethod::kMax:
      if (merged.count == 0) {
        return Status::NotFound("no data in range");
      }
      return merged.max;
    case AggregateMethod::kMean:
      if (merged.count == 0) {
        return Status::NotFound("no data in range");
      }
      return merged.sum / static_cast<double>(merged.count);
    case AggregateMethod::kPercentile:
      break;
  }

  // Holistic percentile: bins as a CDF (§4.3). Find the bin containing the
  // requested rank, then materialize only that bin's values.
  const uint64_t total = merged.count;
  if (total == 0) {
    return Status::NotFound("no data in range");
  }
  uint64_t rank = static_cast<uint64_t>(std::ceil(percentile / 100.0 * static_cast<double>(total)));
  rank = std::max<uint64_t>(1, std::min(rank, total));
  uint32_t target_bin = 0;
  uint64_t cumulative = 0;
  for (uint32_t b = 0; b < bin_counts.size(); ++b) {
    if (cumulative + bin_counts[b] >= rank) {
      target_bin = b;
      break;
    }
    cumulative += bin_counts[b];
  }
  const uint64_t local_rank = rank - cumulative;  // 1-based within the bin

  std::vector<double> bin_values;
  bin_values.reserve(bin_counts[target_bin]);
  {
    // One kernel pass over all loosely-scanned values instead of a
    // binary-search per value (bit-exact with BinOf).
    std::vector<uint32_t> loose_bins(loose_values.size());
    spec.ClassifyBatch(*kernels_, loose_values.data(), loose_values.size(), loose_bins.data());
    for (size_t i = 0; i < loose_values.size(); ++i) {
      if (loose_bins[i] == target_bin) {
        bin_values.push_back(loose_values[i]);
      }
    }
  }
  // Stage 2: the summaries did not settle these chunks after all — read their
  // records to materialize the target bin. Reclassify so the trace invariant
  // (pruned + scanned == considered) keeps holding, in the tier_* family too
  // for chunks whose records now live in the archive.
  std::vector<BinAccumulation::MergedChunk> rescan;
  size_t rescan_archived = 0;
  for (const BinAccumulation::MergedChunk& mc : fully_merged) {
    for (const ChunkSummary::Entry& e : mc.summary->entries) {
      if (e.source_id == source_id && e.index_id == index_id && e.bin == target_bin) {
        rescan.push_back(mc);
        if (mc.archive_ref >= 0) {
          ++rescan_archived;
        }
        break;
      }
    }
  }
  trace->chunks_pruned -= rescan.size();
  trace->chunks_summary_folded -= rescan.size();
  trace->chunks_scanned += rescan.size();
  trace->tier_chunks_pruned -= rescan_archived;
  trace->tier_chunks_summary_folded -= rescan_archived;
  trace->tier_chunks_scanned += rescan_archived;
  // Stage-2 chunks are known exactly (decoded summaries in hand), so the
  // prefetch ring gets precise ranges — no derivation, no verification miss.
  // Archived rescans stream from their archives instead, so the ring only
  // runs when every rescan chunk is hot (slot indexes must line up).
  std::unique_ptr<ChunkPrefetcher::Job> stage2_ring;
  if (options_.prefetch_depth > 0 && rescan.size() >= 2 && rescan_archived == 0) {
    std::vector<ChunkPrefetcher::Range> ranges;
    ranges.reserve(rescan.size());
    for (const BinAccumulation::MergedChunk& mc : rescan) {
      const uint64_t end =
          std::min<uint64_t>(mc.summary->chunk_addr + mc.summary->chunk_len, snap.record_tail);
      ranges.push_back({mc.summary->chunk_addr,
                        static_cast<uint32_t>(end > mc.summary->chunk_addr
                                                  ? end - mc.summary->chunk_addr
                                                  : 0)});
    }
    stage2_ring = prefetcher_.Submit(record_log_.get(), std::move(ranges),
                                     options_.prefetch_depth);
  }
  std::vector<std::vector<double>> chunk_values(rescan.size());
  auto scan_chunk = [&](size_t i, QueryTrace* t) -> Status {
    const BinAccumulation::MergedChunk& mchunk = rescan[i];
    // Collect the chunk's extracted values, then classify them in one kernel
    // pass; order (and therefore nth_element input) matches the per-record
    // BinOf filter exactly.
    std::vector<double> vals;
    auto collect = [&](const RecordView& view) -> bool {
      std::optional<double> value = func(view.payload);
      if (value.has_value()) {
        vals.push_back(*value);
      }
      return true;
    };
    Status st;
    if (mchunk.archive_ref >= 0) {
      st = ScanArchiveBlockFor(
          acc.archive_candidates[static_cast<size_t>(mchunk.archive_ref)], source_id, t_range,
          collect, t);
    } else {
      const ChunkSummary* mc = mchunk.summary;
      const uint64_t end = std::min<uint64_t>(mc->chunk_addr + mc->chunk_len, snap.record_tail);
      std::optional<std::vector<uint8_t>> pre;
      if (stage2_ring != nullptr) {
        pre = stage2_ring->Take(i);
      }
      std::span<const uint8_t> preloaded;
      if (pre.has_value() && end > mc->chunk_addr && pre->size() >= end - mc->chunk_addr) {
        preloaded =
            std::span<const uint8_t>(pre->data(), static_cast<size_t>(end - mc->chunk_addr));
      }
      st = ScanRecordRangeFor(mc->chunk_addr, end, source_id, t_range, preloaded, collect, t);
    }
    if (!st.ok()) {
      return st;
    }
    std::vector<uint32_t> bins(vals.size());
    spec.ClassifyBatch(*kernels_, vals.data(), vals.size(), bins.data());
    for (size_t v = 0; v < vals.size(); ++v) {
      if (bins[v] == target_bin) {
        chunk_values[i].push_back(vals[v]);
      }
    }
    return Status::Ok();
  };
  if (CanRunParallel() && rescan.size() >= kMinParallelCandidates) {
    const std::vector<std::pair<size_t, size_t>> morsels =
        MakeMorsels(rescan.size(), query_pool_->num_threads());
    std::vector<Status> morsel_status(morsels.size());
    std::vector<QueryTrace> morsel_traces(morsels.size());
    for (QueryTrace& mt : morsel_traces) {
      mt.detailed = trace->detailed;
    }
    std::atomic<bool> abort{false};
    const QueryThreadPool::RunStats stats = query_pool_->Run(morsels.size(), [&](size_t mi) {
      if (abort.load(std::memory_order_relaxed)) {
        return;
      }
      const auto [begin, end] = morsels[mi];
      for (size_t i = begin; i < end; ++i) {
        Status st = scan_chunk(i, &morsel_traces[mi]);
        if (!st.ok()) {
          morsel_status[mi] = st;
          abort.store(true, std::memory_order_relaxed);
          return;
        }
      }
    });
    trace->parallel_morsels += stats.morsels;
    trace->parallel_workers += stats.workers_used;
    for (const QueryTrace& mt : morsel_traces) {
      trace->AbsorbWorker(mt);
    }
    for (const Status& st : morsel_status) {
      if (!st.ok()) {
        return st;
      }
    }
  } else {
    for (size_t i = 0; i < rescan.size(); ++i) {
      LOOM_RETURN_IF_ERROR(scan_chunk(i, trace));
    }
  }
  for (const std::vector<double>& values : chunk_values) {
    bin_values.insert(bin_values.end(), values.begin(), values.end());
  }
  if (bin_values.size() < local_rank) {
    return Status::Internal("percentile bin materialization mismatch");
  }
  std::nth_element(bin_values.begin(), bin_values.begin() + static_cast<long>(local_rank - 1),
                   bin_values.end());
  return bin_values[local_rank - 1];
}

Result<HistogramSpec> Loom::IndexSpec(uint32_t index_id) const {
  auto idx = GetIndexSnapshot(index_id);
  if (!idx.ok()) {
    return idx.status();
  }
  return idx.value().spec;
}

LoomStats Loom::stats() const {
  LoomStats s;
  s.records_ingested = m_.records_ingested->Value();
  s.bytes_ingested = m_.bytes_ingested->Value();
  s.chunks_finalized = m_.chunks_finalized->Value();
  s.ts_entries = m_.ts_entries->Value();
  s.record_log = record_log_->stats();
  s.chunk_index_log = chunk_log_->stats();
  s.ts_index_log = ts_log_->stats();
  if (summary_cache_ != nullptr) {
    s.summary_cache = summary_cache_->stats();
  }
  return s;
}

}  // namespace loom
