// Shared worker pool for morsel-driven parallel query execution.
//
// One pool is owned by a `Loom` engine (LoomOptions::query_threads > 0) and
// shared by every query. Threads start lazily on the first parallel query, so
// a serial deployment never pays for idle workers. A query partitions its
// candidate chunks into morsels, enqueues participation tickets, and the
// *calling* thread works alongside the pool — with zero pool threads the
// caller simply runs every morsel itself, which is also the degraded path
// while workers are busy with other queries.
//
// Two execution shapes:
//   * Run:        unordered fan-out; returns when every morsel finished.
//   * RunOrdered: workers produce morsel results out of order, bounded to a
//                 soft window ahead of consumption; the caller consumes
//                 results strictly in morsel order (scan operators use this
//                 to deliver callbacks in the exact serial order).
//
// Morsel functions must not throw, and must not issue parallel queries
// themselves — operators check OnWorkerThread() and fall back to serial
// execution inside a worker, so a user callback or index function that
// re-enters the engine cannot deadlock the pool.

#ifndef SRC_CORE_QUERY_THREAD_POOL_H_
#define SRC_CORE_QUERY_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace loom {

class QueryThreadPool {
 public:
  struct RunStats {
    size_t morsels = 0;
    // Distinct threads (pool workers + the caller) that ran >= 1 morsel.
    size_t workers_used = 0;
    bool cancelled = false;
  };

  explicit QueryThreadPool(size_t num_threads);
  ~QueryThreadPool();

  QueryThreadPool(const QueryThreadPool&) = delete;
  QueryThreadPool& operator=(const QueryThreadPool&) = delete;

  size_t num_threads() const { return num_threads_; }
  bool started() const;

  // Unclaimed participation tickets across in-flight runs (approximate; for
  // the loom_query_parallel_pool_queue_depth gauge).
  size_t QueueDepthApprox() const;

  // True when the calling thread is a worker of any QueryThreadPool in this
  // process. Query operators refuse nested parallelism based on this.
  static bool OnWorkerThread();

  // Runs fn(i) for every morsel i in [0, n). The caller participates and the
  // call returns once all n morsels finished. `fn` may run concurrently with
  // itself for distinct i.
  RunStats Run(size_t n, const std::function<void(size_t)>& fn);

  // Like Run, but additionally invokes consume(0), consume(1), ... strictly
  // in order on the calling thread, each after fn(i) finished. Production
  // runs at most `window` morsels ahead of consumption (0 = unbounded),
  // bounding buffered results. consume(i) returning false cancels all
  // not-yet-started morsels and returns early (stats.cancelled = true).
  RunStats RunOrdered(size_t n, size_t window, const std::function<void(size_t)>& fn,
                      const std::function<bool(size_t)>& consume);

 private:
  struct RunState;

  void EnsureStarted();
  void WorkerMain();
  // Claims and runs morsels of `state` until none remain (or cancelled).
  // Returns true if this thread ran at least one morsel.
  static bool WorkBody(RunState& state);
  RunStats RunImpl(size_t n, size_t window, const std::function<void(size_t)>& fn,
                   const std::function<bool(size_t)>* consume);

  const size_t num_threads_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  // Participation tickets: a worker pops one and joins that run. A run
  // enqueues min(num_threads, morsels) tickets.
  std::deque<std::shared_ptr<RunState>> queue_;
  std::vector<std::thread> threads_;
  bool started_ = false;
  bool stopping_ = false;
};

}  // namespace loom

#endif  // SRC_CORE_QUERY_THREAD_POOL_H_
