// Per-query execution trace.
//
// Every query operator accepts an optional `QueryTrace*`; when supplied, the
// engine fills it with what the query actually did — how many chunk
// summaries it considered, how many the chunk index pruned (including those
// answered purely from summary bins, which never touch record data), how
// many chunks it scanned, record/byte volumes, summary-cache hits, and stage
// timings. Callers log it, return it to users, or assert on it in tests.
//
// Invariant: chunks_pruned + chunks_scanned == chunks_considered. A chunk is
// "considered" when its summary was examined against the query, "pruned"
// when the summary alone settled it (out of range, no matching bins, or
// folded directly into the aggregate), and "scanned" when its record data
// had to be read.
//
// The invariant holds ACROSS TIERS: archived blocks consulted through the
// tier catalog count into the same chunks_* totals (an archive block is one
// demoted chunk, classified by its zone map exactly like a hot summary), and
// additionally into the tier_* counters below — which obey the same
// tier_chunks_pruned + tier_chunks_scanned == tier_chunks_considered
// equation, so the hot-only share is recoverable by subtraction.
//
// The engine also folds each finished trace into the metrics registry
// (loom_query_* counters and per-operator latency histograms), so the
// aggregate picture is available from the daemon's exposition endpoint even
// when no caller asks for traces.

#ifndef SRC_CORE_QUERY_TRACE_H_
#define SRC_CORE_QUERY_TRACE_H_

#include <cstdint>
#include <string>

namespace loom {

struct QueryTrace {
  const char* op = "";

  uint64_t chunks_considered = 0;
  uint64_t chunks_pruned = 0;          // settled by the summary; no record reads
  uint64_t chunks_summary_folded = 0;  // subset of pruned: bins folded into result
  uint64_t chunks_scanned = 0;

  uint64_t records_examined = 0;  // records decoded during scans / chain walks
  uint64_t records_matched = 0;   // records delivered to the caller
  uint64_t bytes_read = 0;        // record-log bytes decoded

  uint64_t cache_hits = 0;    // decoded-summary cache
  uint64_t cache_misses = 0;

  // Archive tier (all zero when no archived data was consulted). These are
  // subsets of the chunks_* / bytes totals above, not additions to them:
  // tier_bytes_read counts compressed archive bytes fetched, included in
  // bytes_read.
  uint64_t tier_archives_consulted = 0;     // archives whose zone maps were read
  uint64_t tier_chunks_considered = 0;      // archived blocks examined
  uint64_t tier_chunks_pruned = 0;          // settled by the zone map alone
  uint64_t tier_chunks_summary_folded = 0;  // subset of tier pruned
  uint64_t tier_chunks_scanned = 0;         // blocks decompressed + decoded
  uint64_t tier_bytes_read = 0;

  // Parallel execution (0 when the query ran serially). `parallel_workers`
  // counts distinct threads — pool workers plus the calling thread — that
  // processed at least one morsel.
  uint64_t parallel_morsels = 0;
  uint64_t parallel_workers = 0;

  // Stage timings (nanoseconds). plan = snapshot + candidate collection;
  // scan = record-range scans and chain walks (summed across workers for a
  // parallel query, so it reads as CPU time, not wall time); merge = the
  // coordinator's combine step over per-morsel partials. Only measured when
  // the caller passed a trace (detailed = true); total_nanos additionally
  // feeds the per-operator histogram whenever latency metrics are enabled.
  uint64_t plan_nanos = 0;
  uint64_t scan_nanos = 0;
  uint64_t merge_nanos = 0;
  uint64_t total_nanos = 0;

  // Set by the engine when the caller asked for this trace; gates the
  // per-stage clock reads so internal bookkeeping stays cheap.
  bool detailed = false;

  std::string ToString() const {
    std::string s;
    s.reserve(256);
    s += "QueryTrace{op=";
    s += op;
    s += " chunks=" + std::to_string(chunks_considered) +
         " pruned=" + std::to_string(chunks_pruned) +
         " folded=" + std::to_string(chunks_summary_folded) +
         " scanned=" + std::to_string(chunks_scanned) +
         " records=" + std::to_string(records_examined) +
         " matched=" + std::to_string(records_matched) +
         " bytes=" + std::to_string(bytes_read) +
         " cache_hit=" + std::to_string(cache_hits) + "/" +
         std::to_string(cache_hits + cache_misses);
    if (tier_archives_consulted > 0 || tier_chunks_considered > 0) {
      s += " tier_archives=" + std::to_string(tier_archives_consulted) +
           " tier_chunks=" + std::to_string(tier_chunks_considered) +
           " tier_pruned=" + std::to_string(tier_chunks_pruned) +
           " tier_folded=" + std::to_string(tier_chunks_summary_folded) +
           " tier_scanned=" + std::to_string(tier_chunks_scanned) +
           " tier_bytes=" + std::to_string(tier_bytes_read);
    }
    s +=
         " morsels=" + std::to_string(parallel_morsels) + "x" +
         std::to_string(parallel_workers) +
         " plan_us=" + std::to_string(plan_nanos / 1000) +
         " scan_us=" + std::to_string(scan_nanos / 1000) +
         " merge_us=" + std::to_string(merge_nanos / 1000) +
         " total_us=" + std::to_string(total_nanos / 1000) + "}";
    return s;
  }

  // Folds a per-morsel worker trace into this (coordinator) trace. Chunk
  // classification counters (considered / pruned / folded / scanned) are
  // deliberately NOT absorbed: the coordinator counts those itself while
  // merging morsel outcomes, which is what keeps the
  // pruned + scanned == considered invariant exact under parallelism.
  void AbsorbWorker(const QueryTrace& w) {
    records_examined += w.records_examined;
    records_matched += w.records_matched;
    bytes_read += w.bytes_read;
    cache_hits += w.cache_hits;
    cache_misses += w.cache_misses;
    plan_nanos += w.plan_nanos;
    scan_nanos += w.scan_nanos;
  }
};

}  // namespace loom

#endif  // SRC_CORE_QUERY_TRACE_H_
