#include "src/lsmstore/lsm_store.h"

#include <algorithm>
#include <filesystem>

#include "src/common/codec.h"

namespace loom {

namespace {

constexpr size_t kIndexEvery = 16;

// Entry layout in a run file: u32 klen | u32 vlen | key | value.
void AppendEntry(std::vector<uint8_t>& buf, std::string_view key,
                 std::span<const uint8_t> value) {
  PutU32(buf, static_cast<uint32_t>(key.size()));
  PutU32(buf, static_cast<uint32_t>(value.size()));
  buf.insert(buf.end(), key.begin(), key.end());
  buf.insert(buf.end(), value.begin(), value.end());
}

}  // namespace

Result<std::unique_ptr<LsmStore>> LsmStore::Open(const LsmOptions& options) {
  if (options.dir.empty()) {
    return Status::InvalidArgument("LsmOptions.dir must be set");
  }
  std::error_code ec;
  std::filesystem::create_directories(options.dir, ec);
  if (ec) {
    return Status::IoError("create_directories " + options.dir + ": " + ec.message());
  }
  return std::unique_ptr<LsmStore>(new LsmStore(options));
}

LsmStore::~LsmStore() = default;

Status LsmStore::Put(std::string_view key, std::span<const uint8_t> value) {
  auto [it, inserted] =
      memtable_.insert_or_assign(std::string(key), std::vector<uint8_t>(value.begin(),
                                                                        value.end()));
  (void)it;
  (void)inserted;
  memtable_bytes_ += key.size() + value.size() + 32;  // node overhead estimate
  ++puts_;
  bytes_ingested_ += key.size() + value.size();
  if (memtable_bytes_ >= options_.memtable_max_bytes) {
    return FlushMemtable();
  }
  return Status::Ok();
}

Status LsmStore::FlushMemtable() {
  if (memtable_.empty()) {
    return Status::Ok();
  }
  auto run = WriteRun(0, memtable_);
  if (!run.ok()) {
    return run.status();
  }
  runs_.push_back(std::move(run.value()));
  memtable_.clear();
  memtable_bytes_ = 0;
  ++flushes_;
  return MaybeCompact();
}

Result<std::unique_ptr<LsmStore::Run>> LsmStore::WriteRun(
    uint64_t level, const std::map<std::string, std::vector<uint8_t>>& data) {
  auto run = std::make_unique<Run>();
  run->id = next_run_id_++;
  run->level = level;
  auto file = File::CreateTruncate(options_.dir + "/sst-" + std::to_string(run->id));
  if (!file.ok()) {
    return file.status();
  }
  run->file = std::move(file.value());
  std::vector<uint8_t> buf;
  buf.reserve(1 << 20);
  uint64_t offset = 0;
  size_t i = 0;
  for (const auto& [key, value] : data) {
    if (i % kIndexEvery == 0) {
      run->index.emplace_back(key, offset + buf.size());
    }
    AppendEntry(buf, key, value);
    ++i;
    run->last_key = key;
    if (buf.size() >= (1 << 20)) {
      Status st = run->file.PWriteAll(offset, buf);
      if (!st.ok()) {
        return st;
      }
      offset += buf.size();
      bytes_written_ += buf.size();
      buf.clear();
    }
  }
  if (!buf.empty()) {
    Status st = run->file.PWriteAll(offset, buf);
    if (!st.ok()) {
      return st;
    }
    offset += buf.size();
    bytes_written_ += buf.size();
  }
  run->file_bytes = offset;
  return run;
}

Status LsmStore::MaybeCompact() {
  size_t l0 = 0;
  for (const auto& run : runs_) {
    if (run->level == 0) {
      ++l0;
    }
  }
  if (l0 < options_.l0_compaction_trigger) {
    return Status::Ok();
  }
  // Full-merge compaction: read every run oldest-to-newest into one map
  // (newer values overwrite older), then rewrite as a single level-1 run.
  std::map<std::string, std::vector<uint8_t>> merged;
  for (const auto& run : runs_) {
    LOOM_RETURN_IF_ERROR(LoadRun(*run, merged));
  }
  auto compacted = WriteRun(1, merged);
  if (!compacted.ok()) {
    return compacted.status();
  }
  for (const auto& run : runs_) {
    std::error_code ec;
    std::filesystem::remove(run->file.path(), ec);
  }
  runs_.clear();
  runs_.push_back(std::move(compacted.value()));
  ++compactions_;
  return Status::Ok();
}

Status LsmStore::LoadRun(const Run& run, std::map<std::string, std::vector<uint8_t>>& into) const {
  std::vector<uint8_t> buf(run.file_bytes);
  if (run.file_bytes == 0) {
    return Status::Ok();
  }
  LOOM_RETURN_IF_ERROR(run.file.PReadAll(0, buf));
  size_t off = 0;
  while (off + 8 <= buf.size()) {
    const uint32_t klen = GetU32(buf, off);
    const uint32_t vlen = GetU32(buf, off + 4);
    if (off + 8 + klen + vlen > buf.size()) {
      return Status::DataLoss("truncated run entry in " + run.file.path());
    }
    std::string key(reinterpret_cast<const char*>(buf.data() + off + 8), klen);
    std::vector<uint8_t> value(buf.begin() + static_cast<long>(off + 8 + klen),
                               buf.begin() + static_cast<long>(off + 8 + klen + vlen));
    into.insert_or_assign(std::move(key), std::move(value));
    off += 8 + klen + vlen;
  }
  return Status::Ok();
}

Result<std::optional<std::vector<uint8_t>>> LsmStore::SearchRun(const Run& run,
                                                                std::string_view key) const {
  if (run.index.empty() || key > run.last_key || key < run.index.front().first) {
    return std::optional<std::vector<uint8_t>>(std::nullopt);
  }
  // Find the last index entry <= key, then scan forward up to kIndexEvery
  // entries.
  auto it = std::upper_bound(run.index.begin(), run.index.end(), key,
                             [](std::string_view k, const auto& e) { return k < e.first; });
  --it;
  uint64_t off = it->second;
  // Read a window: worst case kIndexEvery max-size entries; read to run end
  // capped at 256 KiB.
  const uint64_t len = std::min<uint64_t>(run.file_bytes - off, 256 << 10);
  std::vector<uint8_t> buf(len);
  LOOM_RETURN_IF_ERROR(run.file.PReadAll(off, buf));
  size_t pos = 0;
  for (size_t i = 0; i < kIndexEvery && pos + 8 <= buf.size(); ++i) {
    const uint32_t klen = GetU32(buf, pos);
    const uint32_t vlen = GetU32(buf, pos + 4);
    if (pos + 8 + klen + vlen > buf.size()) {
      break;
    }
    std::string_view entry_key(reinterpret_cast<const char*>(buf.data() + pos + 8), klen);
    if (entry_key == key) {
      return std::optional<std::vector<uint8_t>>(std::vector<uint8_t>(
          buf.begin() + static_cast<long>(pos + 8 + klen),
          buf.begin() + static_cast<long>(pos + 8 + klen + vlen)));
    }
    if (entry_key > key) {
      break;
    }
    pos += 8 + klen + vlen;
  }
  return std::optional<std::vector<uint8_t>>(std::nullopt);
}

Result<std::vector<uint8_t>> LsmStore::Get(std::string_view key) const {
  auto it = memtable_.find(std::string(key));
  if (it != memtable_.end()) {
    return it->second;
  }
  for (auto rit = runs_.rbegin(); rit != runs_.rend(); ++rit) {
    auto found = SearchRun(**rit, key);
    if (!found.ok()) {
      return found.status();
    }
    if (found.value().has_value()) {
      return *found.value();
    }
  }
  return Status::NotFound("key not found");
}

Status LsmStore::Flush() { return FlushMemtable(); }

LsmStats LsmStore::stats() const {
  LsmStats s;
  s.puts = puts_;
  s.bytes_ingested = bytes_ingested_;
  s.flushes = flushes_;
  s.compactions = compactions_;
  s.bytes_written = bytes_written_;
  s.runs = runs_.size();
  return s;
}

}  // namespace loom
