// LSM-tree key-value store baseline (RocksDB style) for the data-structure
// ingest comparison (§6.3, Fig. 15).
//
// Writes go into a tree-ordered memtable; full memtables flush to sorted
// runs (SSTs); accumulating level-0 runs are merge-compacted. The WAL is off,
// matching the paper's RocksDB configuration for this experiment. The cost
// drivers the figure measures — per-record tree insertion and merge CPU /
// write amplification — are all present. Compaction runs inline on the
// ingest thread because the evaluation environment is a single core.

#ifndef SRC_LSMSTORE_LSM_STORE_H_
#define SRC_LSMSTORE_LSM_STORE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/file.h"
#include "src/common/status.h"

namespace loom {

struct LsmOptions {
  std::string dir;
  size_t memtable_max_bytes = 8 << 20;
  size_t l0_compaction_trigger = 4;
};

struct LsmStats {
  uint64_t puts = 0;
  uint64_t bytes_ingested = 0;
  uint64_t flushes = 0;
  uint64_t compactions = 0;
  uint64_t bytes_written = 0;  // includes compaction rewrites (write amp)
  uint64_t runs = 0;
};

class LsmStore {
 public:
  static Result<std::unique_ptr<LsmStore>> Open(const LsmOptions& options);
  ~LsmStore();

  LsmStore(const LsmStore&) = delete;
  LsmStore& operator=(const LsmStore&) = delete;

  // Single ingest thread.
  Status Put(std::string_view key, std::span<const uint8_t> value);

  // Point lookup: memtable first, then runs newest-to-oldest.
  Result<std::vector<uint8_t>> Get(std::string_view key) const;

  // Flushes the memtable so all data is on disk.
  Status Flush();

  LsmStats stats() const;

 private:
  struct Run {
    uint64_t id = 0;
    uint64_t level = 0;
    File file;
    uint64_t file_bytes = 0;
    // Sparse index: (key, file offset) every kIndexEvery entries.
    std::vector<std::pair<std::string, uint64_t>> index;
    std::string last_key;
  };

  explicit LsmStore(const LsmOptions& options) : options_(options) {}

  Status FlushMemtable();
  Status MaybeCompact();
  Result<std::unique_ptr<Run>> WriteRun(uint64_t level,
                                        const std::map<std::string, std::vector<uint8_t>>& data);
  Result<std::optional<std::vector<uint8_t>>> SearchRun(const Run& run,
                                                        std::string_view key) const;
  Status LoadRun(const Run& run, std::map<std::string, std::vector<uint8_t>>& into) const;

  const LsmOptions options_;
  std::map<std::string, std::vector<uint8_t>> memtable_;
  size_t memtable_bytes_ = 0;
  std::vector<std::unique_ptr<Run>> runs_;  // oldest first
  uint64_t next_run_id_ = 0;

  uint64_t puts_ = 0;
  uint64_t bytes_ingested_ = 0;
  uint64_t flushes_ = 0;
  uint64_t compactions_ = 0;
  uint64_t bytes_written_ = 0;
};

}  // namespace loom

#endif  // SRC_LSMSTORE_LSM_STORE_H_
