# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_redis_drilldown "/root/repo/build/examples/redis_drilldown")
set_tests_properties(example_redis_drilldown PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_rocksdb_pagecache "/root/repo/build/examples/rocksdb_pagecache")
set_tests_properties(example_rocksdb_pagecache PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_daemon_sim "/root/repo/build/examples/daemon_sim")
set_tests_properties(example_daemon_sim PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_fleet_query "/root/repo/build/examples/fleet_query")
set_tests_properties(example_fleet_query PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_network_capture "/root/repo/build/examples/network_capture")
set_tests_properties(example_network_capture PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
