file(REMOVE_RECURSE
  "CMakeFiles/daemon_sim.dir/daemon_sim.cpp.o"
  "CMakeFiles/daemon_sim.dir/daemon_sim.cpp.o.d"
  "daemon_sim"
  "daemon_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/daemon_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
