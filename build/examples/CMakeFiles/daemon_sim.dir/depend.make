# Empty dependencies file for daemon_sim.
# This may be replaced when dependencies are built.
