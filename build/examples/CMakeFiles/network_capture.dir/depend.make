# Empty dependencies file for network_capture.
# This may be replaced when dependencies are built.
