file(REMOVE_RECURSE
  "CMakeFiles/network_capture.dir/network_capture.cpp.o"
  "CMakeFiles/network_capture.dir/network_capture.cpp.o.d"
  "network_capture"
  "network_capture.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/network_capture.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
