# Empty compiler generated dependencies file for rocksdb_pagecache.
# This may be replaced when dependencies are built.
