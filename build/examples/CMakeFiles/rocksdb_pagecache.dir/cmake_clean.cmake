file(REMOVE_RECURSE
  "CMakeFiles/rocksdb_pagecache.dir/rocksdb_pagecache.cpp.o"
  "CMakeFiles/rocksdb_pagecache.dir/rocksdb_pagecache.cpp.o.d"
  "rocksdb_pagecache"
  "rocksdb_pagecache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rocksdb_pagecache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
