file(REMOVE_RECURSE
  "CMakeFiles/redis_drilldown.dir/redis_drilldown.cpp.o"
  "CMakeFiles/redis_drilldown.dir/redis_drilldown.cpp.o.d"
  "redis_drilldown"
  "redis_drilldown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/redis_drilldown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
