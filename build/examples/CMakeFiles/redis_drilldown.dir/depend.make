# Empty dependencies file for redis_drilldown.
# This may be replaced when dependencies are built.
