# Empty dependencies file for fleet_query.
# This may be replaced when dependencies are built.
