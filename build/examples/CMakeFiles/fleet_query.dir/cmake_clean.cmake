file(REMOVE_RECURSE
  "CMakeFiles/fleet_query.dir/fleet_query.cpp.o"
  "CMakeFiles/fleet_query.dir/fleet_query.cpp.o.d"
  "fleet_query"
  "fleet_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fleet_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
