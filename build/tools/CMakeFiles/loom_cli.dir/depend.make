# Empty dependencies file for loom_cli.
# This may be replaced when dependencies are built.
