file(REMOVE_RECURSE
  "CMakeFiles/loom_cli.dir/loom_cli.cc.o"
  "CMakeFiles/loom_cli.dir/loom_cli.cc.o.d"
  "loom_cli"
  "loom_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/loom_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
