# Empty dependencies file for bench_fig12_redis_queries.
# This may be replaced when dependencies are built.
