file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_redis_queries.dir/bench_fig12_redis_queries.cc.o"
  "CMakeFiles/bench_fig12_redis_queries.dir/bench_fig12_redis_queries.cc.o.d"
  "bench_fig12_redis_queries"
  "bench_fig12_redis_queries.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_redis_queries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
