# Empty dependencies file for bench_fig02_tsdb_index_cost.
# This may be replaced when dependencies are built.
