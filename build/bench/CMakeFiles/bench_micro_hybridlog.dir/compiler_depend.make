# Empty compiler generated dependencies file for bench_micro_hybridlog.
# This may be replaced when dependencies are built.
