file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_hybridlog.dir/bench_micro_hybridlog.cc.o"
  "CMakeFiles/bench_micro_hybridlog.dir/bench_micro_hybridlog.cc.o.d"
  "bench_micro_hybridlog"
  "bench_micro_hybridlog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_hybridlog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
