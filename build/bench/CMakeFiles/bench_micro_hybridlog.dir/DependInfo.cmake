
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_micro_hybridlog.cc" "bench/CMakeFiles/bench_micro_hybridlog.dir/bench_micro_hybridlog.cc.o" "gcc" "bench/CMakeFiles/bench_micro_hybridlog.dir/bench_micro_hybridlog.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/loom_core.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/loom_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/index/CMakeFiles/loom_index.dir/DependInfo.cmake"
  "/root/repo/build/src/hybridlog/CMakeFiles/loom_hybridlog.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/loom_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
