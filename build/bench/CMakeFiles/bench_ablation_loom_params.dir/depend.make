# Empty dependencies file for bench_ablation_loom_params.
# This may be replaced when dependencies are built.
