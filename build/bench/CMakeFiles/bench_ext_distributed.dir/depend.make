# Empty dependencies file for bench_ext_distributed.
# This may be replaced when dependencies are built.
