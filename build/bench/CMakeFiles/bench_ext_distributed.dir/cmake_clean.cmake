file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_distributed.dir/bench_ext_distributed.cc.o"
  "CMakeFiles/bench_ext_distributed.dir/bench_ext_distributed.cc.o.d"
  "bench_ext_distributed"
  "bench_ext_distributed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_distributed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
