# Empty compiler generated dependencies file for bench_fig14_probe_effect.
# This may be replaced when dependencies are built.
