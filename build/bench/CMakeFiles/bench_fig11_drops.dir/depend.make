# Empty dependencies file for bench_fig11_drops.
# This may be replaced when dependencies are built.
