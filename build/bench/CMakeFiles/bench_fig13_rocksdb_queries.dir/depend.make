# Empty dependencies file for bench_fig13_rocksdb_queries.
# This may be replaced when dependencies are built.
