# Empty compiler generated dependencies file for bench_fig16_index_ablation.
# This may be replaced when dependencies are built.
