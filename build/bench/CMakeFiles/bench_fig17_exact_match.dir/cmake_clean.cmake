file(REMOVE_RECURSE
  "CMakeFiles/bench_fig17_exact_match.dir/bench_fig17_exact_match.cc.o"
  "CMakeFiles/bench_fig17_exact_match.dir/bench_fig17_exact_match.cc.o.d"
  "bench_fig17_exact_match"
  "bench_fig17_exact_match.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig17_exact_match.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
