# Empty dependencies file for bench_fig17_exact_match.
# This may be replaced when dependencies are built.
