# Empty compiler generated dependencies file for fishstore_test.
# This may be replaced when dependencies are built.
