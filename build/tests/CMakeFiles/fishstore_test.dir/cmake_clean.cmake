file(REMOVE_RECURSE
  "CMakeFiles/fishstore_test.dir/fishstore_test.cc.o"
  "CMakeFiles/fishstore_test.dir/fishstore_test.cc.o.d"
  "fishstore_test"
  "fishstore_test.pdb"
  "fishstore_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fishstore_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
