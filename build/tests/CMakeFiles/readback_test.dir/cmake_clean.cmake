file(REMOVE_RECURSE
  "CMakeFiles/readback_test.dir/readback_test.cc.o"
  "CMakeFiles/readback_test.dir/readback_test.cc.o.d"
  "readback_test"
  "readback_test.pdb"
  "readback_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/readback_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
