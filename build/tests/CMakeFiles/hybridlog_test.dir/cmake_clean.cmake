file(REMOVE_RECURSE
  "CMakeFiles/hybridlog_test.dir/hybridlog_test.cc.o"
  "CMakeFiles/hybridlog_test.dir/hybridlog_test.cc.o.d"
  "hybridlog_test"
  "hybridlog_test.pdb"
  "hybridlog_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hybridlog_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
