# Empty dependencies file for hybridlog_test.
# This may be replaced when dependencies are built.
