file(REMOVE_RECURSE
  "CMakeFiles/loom_edge_test.dir/loom_edge_test.cc.o"
  "CMakeFiles/loom_edge_test.dir/loom_edge_test.cc.o.d"
  "loom_edge_test"
  "loom_edge_test.pdb"
  "loom_edge_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/loom_edge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
