# Empty compiler generated dependencies file for loom_edge_test.
# This may be replaced when dependencies are built.
