file(REMOVE_RECURSE
  "CMakeFiles/loom_concurrency_test.dir/loom_concurrency_test.cc.o"
  "CMakeFiles/loom_concurrency_test.dir/loom_concurrency_test.cc.o.d"
  "loom_concurrency_test"
  "loom_concurrency_test.pdb"
  "loom_concurrency_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/loom_concurrency_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
