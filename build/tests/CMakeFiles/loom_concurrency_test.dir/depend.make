# Empty dependencies file for loom_concurrency_test.
# This may be replaced when dependencies are built.
