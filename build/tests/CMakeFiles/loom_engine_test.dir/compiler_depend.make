# Empty compiler generated dependencies file for loom_engine_test.
# This may be replaced when dependencies are built.
