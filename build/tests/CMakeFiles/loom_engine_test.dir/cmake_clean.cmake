file(REMOVE_RECURSE
  "CMakeFiles/loom_engine_test.dir/loom_engine_test.cc.o"
  "CMakeFiles/loom_engine_test.dir/loom_engine_test.cc.o.d"
  "loom_engine_test"
  "loom_engine_test.pdb"
  "loom_engine_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/loom_engine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
