file(REMOVE_RECURSE
  "CMakeFiles/loom_param_test.dir/loom_param_test.cc.o"
  "CMakeFiles/loom_param_test.dir/loom_param_test.cc.o.d"
  "loom_param_test"
  "loom_param_test.pdb"
  "loom_param_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/loom_param_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
