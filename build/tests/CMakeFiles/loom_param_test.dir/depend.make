# Empty dependencies file for loom_param_test.
# This may be replaced when dependencies are built.
