# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/hybridlog_test[1]_include.cmake")
include("/root/repo/build/tests/index_test[1]_include.cmake")
include("/root/repo/build/tests/loom_engine_test[1]_include.cmake")
include("/root/repo/build/tests/loom_concurrency_test[1]_include.cmake")
include("/root/repo/build/tests/loom_edge_test[1]_include.cmake")
include("/root/repo/build/tests/fishstore_test[1]_include.cmake")
include("/root/repo/build/tests/tsdb_test[1]_include.cmake")
include("/root/repo/build/tests/stores_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/daemon_test[1]_include.cmake")
include("/root/repo/build/tests/distributed_test[1]_include.cmake")
include("/root/repo/build/tests/export_test[1]_include.cmake")
include("/root/repo/build/tests/sink_test[1]_include.cmake")
include("/root/repo/build/tests/readback_test[1]_include.cmake")
include("/root/repo/build/tests/query_test[1]_include.cmake")
include("/root/repo/build/tests/robustness_test[1]_include.cmake")
include("/root/repo/build/tests/net_test[1]_include.cmake")
include("/root/repo/build/tests/loom_param_test[1]_include.cmake")
include("/root/repo/build/tests/benchutil_test[1]_include.cmake")
include("/root/repo/build/tests/retention_test[1]_include.cmake")
