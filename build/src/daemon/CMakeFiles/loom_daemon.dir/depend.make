# Empty dependencies file for loom_daemon.
# This may be replaced when dependencies are built.
