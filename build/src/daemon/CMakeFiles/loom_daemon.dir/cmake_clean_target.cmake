file(REMOVE_RECURSE
  "libloom_daemon.a"
)
