file(REMOVE_RECURSE
  "CMakeFiles/loom_daemon.dir/monitoring_daemon.cc.o"
  "CMakeFiles/loom_daemon.dir/monitoring_daemon.cc.o.d"
  "libloom_daemon.a"
  "libloom_daemon.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/loom_daemon.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
