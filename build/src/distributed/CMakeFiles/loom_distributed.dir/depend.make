# Empty dependencies file for loom_distributed.
# This may be replaced when dependencies are built.
