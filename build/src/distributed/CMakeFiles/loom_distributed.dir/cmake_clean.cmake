file(REMOVE_RECURSE
  "CMakeFiles/loom_distributed.dir/coordinator.cc.o"
  "CMakeFiles/loom_distributed.dir/coordinator.cc.o.d"
  "libloom_distributed.a"
  "libloom_distributed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/loom_distributed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
