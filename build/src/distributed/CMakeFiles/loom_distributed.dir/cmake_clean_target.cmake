file(REMOVE_RECURSE
  "libloom_distributed.a"
)
