file(REMOVE_RECURSE
  "libloom_hybridlog.a"
)
