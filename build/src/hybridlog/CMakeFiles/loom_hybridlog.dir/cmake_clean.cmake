file(REMOVE_RECURSE
  "CMakeFiles/loom_hybridlog.dir/cached_reader.cc.o"
  "CMakeFiles/loom_hybridlog.dir/cached_reader.cc.o.d"
  "CMakeFiles/loom_hybridlog.dir/hybrid_log.cc.o"
  "CMakeFiles/loom_hybridlog.dir/hybrid_log.cc.o.d"
  "libloom_hybridlog.a"
  "libloom_hybridlog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/loom_hybridlog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
