# Empty compiler generated dependencies file for loom_hybridlog.
# This may be replaced when dependencies are built.
