# Empty compiler generated dependencies file for loom_btreestore.
# This may be replaced when dependencies are built.
