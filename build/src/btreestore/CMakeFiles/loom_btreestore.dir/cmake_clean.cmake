file(REMOVE_RECURSE
  "CMakeFiles/loom_btreestore.dir/btree_store.cc.o"
  "CMakeFiles/loom_btreestore.dir/btree_store.cc.o.d"
  "libloom_btreestore.a"
  "libloom_btreestore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/loom_btreestore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
