file(REMOVE_RECURSE
  "libloom_btreestore.a"
)
