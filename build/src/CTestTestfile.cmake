# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("hybridlog")
subdirs("index")
subdirs("core")
subdirs("fishstore")
subdirs("tsdb")
subdirs("lsmstore")
subdirs("btreestore")
subdirs("rawfile")
subdirs("workload")
subdirs("benchutil")
subdirs("daemon")
subdirs("distributed")
subdirs("export")
subdirs("sink")
subdirs("readback")
subdirs("query")
subdirs("net")
