file(REMOVE_RECURSE
  "CMakeFiles/loom_lsmstore.dir/lsm_store.cc.o"
  "CMakeFiles/loom_lsmstore.dir/lsm_store.cc.o.d"
  "libloom_lsmstore.a"
  "libloom_lsmstore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/loom_lsmstore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
