file(REMOVE_RECURSE
  "libloom_lsmstore.a"
)
