# Empty compiler generated dependencies file for loom_lsmstore.
# This may be replaced when dependencies are built.
