file(REMOVE_RECURSE
  "CMakeFiles/loom_readback.dir/readback.cc.o"
  "CMakeFiles/loom_readback.dir/readback.cc.o.d"
  "libloom_readback.a"
  "libloom_readback.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/loom_readback.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
