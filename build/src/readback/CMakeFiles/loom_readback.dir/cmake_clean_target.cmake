file(REMOVE_RECURSE
  "libloom_readback.a"
)
