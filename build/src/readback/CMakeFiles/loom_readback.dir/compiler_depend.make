# Empty compiler generated dependencies file for loom_readback.
# This may be replaced when dependencies are built.
