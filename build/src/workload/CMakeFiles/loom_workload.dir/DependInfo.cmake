
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/case_studies.cc" "src/workload/CMakeFiles/loom_workload.dir/case_studies.cc.o" "gcc" "src/workload/CMakeFiles/loom_workload.dir/case_studies.cc.o.d"
  "/root/repo/src/workload/probe_app.cc" "src/workload/CMakeFiles/loom_workload.dir/probe_app.cc.o" "gcc" "src/workload/CMakeFiles/loom_workload.dir/probe_app.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/loom_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
