file(REMOVE_RECURSE
  "CMakeFiles/loom_workload.dir/case_studies.cc.o"
  "CMakeFiles/loom_workload.dir/case_studies.cc.o.d"
  "CMakeFiles/loom_workload.dir/probe_app.cc.o"
  "CMakeFiles/loom_workload.dir/probe_app.cc.o.d"
  "libloom_workload.a"
  "libloom_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/loom_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
