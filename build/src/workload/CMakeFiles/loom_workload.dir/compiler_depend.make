# Empty compiler generated dependencies file for loom_workload.
# This may be replaced when dependencies are built.
