file(REMOVE_RECURSE
  "libloom_workload.a"
)
