# Empty compiler generated dependencies file for loom_export.
# This may be replaced when dependencies are built.
