file(REMOVE_RECURSE
  "CMakeFiles/loom_export.dir/codec.cc.o"
  "CMakeFiles/loom_export.dir/codec.cc.o.d"
  "CMakeFiles/loom_export.dir/exporter.cc.o"
  "CMakeFiles/loom_export.dir/exporter.cc.o.d"
  "libloom_export.a"
  "libloom_export.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/loom_export.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
