file(REMOVE_RECURSE
  "libloom_export.a"
)
