# Empty compiler generated dependencies file for loom_benchutil.
# This may be replaced when dependencies are built.
