file(REMOVE_RECURSE
  "libloom_benchutil.a"
)
