file(REMOVE_RECURSE
  "CMakeFiles/loom_benchutil.dir/table.cc.o"
  "CMakeFiles/loom_benchutil.dir/table.cc.o.d"
  "libloom_benchutil.a"
  "libloom_benchutil.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/loom_benchutil.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
