file(REMOVE_RECURSE
  "libloom_rawfile.a"
)
