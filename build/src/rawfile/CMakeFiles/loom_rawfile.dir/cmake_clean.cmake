file(REMOVE_RECURSE
  "CMakeFiles/loom_rawfile.dir/raw_file_writer.cc.o"
  "CMakeFiles/loom_rawfile.dir/raw_file_writer.cc.o.d"
  "libloom_rawfile.a"
  "libloom_rawfile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/loom_rawfile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
