# Empty compiler generated dependencies file for loom_rawfile.
# This may be replaced when dependencies are built.
