file(REMOVE_RECURSE
  "libloom_sink.a"
)
