file(REMOVE_RECURSE
  "CMakeFiles/loom_sink.dir/trace_sink.cc.o"
  "CMakeFiles/loom_sink.dir/trace_sink.cc.o.d"
  "libloom_sink.a"
  "libloom_sink.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/loom_sink.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
