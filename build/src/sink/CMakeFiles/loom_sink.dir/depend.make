# Empty dependencies file for loom_sink.
# This may be replaced when dependencies are built.
