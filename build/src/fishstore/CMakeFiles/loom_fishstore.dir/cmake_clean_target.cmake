file(REMOVE_RECURSE
  "libloom_fishstore.a"
)
