# Empty compiler generated dependencies file for loom_fishstore.
# This may be replaced when dependencies are built.
