file(REMOVE_RECURSE
  "CMakeFiles/loom_fishstore.dir/fishstore.cc.o"
  "CMakeFiles/loom_fishstore.dir/fishstore.cc.o.d"
  "libloom_fishstore.a"
  "libloom_fishstore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/loom_fishstore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
