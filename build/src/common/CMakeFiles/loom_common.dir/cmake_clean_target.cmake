file(REMOVE_RECURSE
  "libloom_common.a"
)
