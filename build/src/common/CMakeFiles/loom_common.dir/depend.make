# Empty dependencies file for loom_common.
# This may be replaced when dependencies are built.
