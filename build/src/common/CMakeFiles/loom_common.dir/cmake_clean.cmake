file(REMOVE_RECURSE
  "CMakeFiles/loom_common.dir/file.cc.o"
  "CMakeFiles/loom_common.dir/file.cc.o.d"
  "CMakeFiles/loom_common.dir/rng.cc.o"
  "CMakeFiles/loom_common.dir/rng.cc.o.d"
  "CMakeFiles/loom_common.dir/status.cc.o"
  "CMakeFiles/loom_common.dir/status.cc.o.d"
  "libloom_common.a"
  "libloom_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/loom_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
