# Empty compiler generated dependencies file for loom_query.
# This may be replaced when dependencies are built.
