file(REMOVE_RECURSE
  "libloom_query.a"
)
