file(REMOVE_RECURSE
  "CMakeFiles/loom_query.dir/drilldown.cc.o"
  "CMakeFiles/loom_query.dir/drilldown.cc.o.d"
  "libloom_query.a"
  "libloom_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/loom_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
