file(REMOVE_RECURSE
  "CMakeFiles/loom_core.dir/loom.cc.o"
  "CMakeFiles/loom_core.dir/loom.cc.o.d"
  "libloom_core.a"
  "libloom_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/loom_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
