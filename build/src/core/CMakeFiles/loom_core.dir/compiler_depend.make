# Empty compiler generated dependencies file for loom_core.
# This may be replaced when dependencies are built.
