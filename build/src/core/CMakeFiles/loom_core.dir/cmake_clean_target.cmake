file(REMOVE_RECURSE
  "libloom_core.a"
)
