file(REMOVE_RECURSE
  "libloom_net.a"
)
