# Empty dependencies file for loom_net.
# This may be replaced when dependencies are built.
