file(REMOVE_RECURSE
  "CMakeFiles/loom_net.dir/ingest_server.cc.o"
  "CMakeFiles/loom_net.dir/ingest_server.cc.o.d"
  "libloom_net.a"
  "libloom_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/loom_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
