file(REMOVE_RECURSE
  "CMakeFiles/loom_tsdb.dir/tsdb.cc.o"
  "CMakeFiles/loom_tsdb.dir/tsdb.cc.o.d"
  "libloom_tsdb.a"
  "libloom_tsdb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/loom_tsdb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
