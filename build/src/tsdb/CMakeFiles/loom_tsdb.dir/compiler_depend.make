# Empty compiler generated dependencies file for loom_tsdb.
# This may be replaced when dependencies are built.
