file(REMOVE_RECURSE
  "libloom_tsdb.a"
)
