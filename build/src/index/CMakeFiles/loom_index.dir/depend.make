# Empty dependencies file for loom_index.
# This may be replaced when dependencies are built.
