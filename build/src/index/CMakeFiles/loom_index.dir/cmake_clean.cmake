file(REMOVE_RECURSE
  "CMakeFiles/loom_index.dir/chunk_summary.cc.o"
  "CMakeFiles/loom_index.dir/chunk_summary.cc.o.d"
  "CMakeFiles/loom_index.dir/histogram.cc.o"
  "CMakeFiles/loom_index.dir/histogram.cc.o.d"
  "CMakeFiles/loom_index.dir/timestamp_index.cc.o"
  "CMakeFiles/loom_index.dir/timestamp_index.cc.o.d"
  "libloom_index.a"
  "libloom_index.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/loom_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
