file(REMOVE_RECURSE
  "libloom_index.a"
)
